// Command hybridroute runs the full pipeline on a generated scenario and
// routes a batch of queries, reporting preprocessing cost and path stretch —
// a one-shot demonstration of the system.
//
// With -batch the query workload is answered by the concurrent batch engine
// (worker pool + sharded plan cache) instead of one sequential Route call
// per query, and the report adds throughput and cache statistics.
//
// With -trace the run records structured events through the whole stack
// (simulator sends/drops/deliveries, per-hop transport attempts, plan-cache
// effectiveness), prints a traced sample query with its per-hop retransmit
// breakdown and competitive ratio, and writes the aggregated metrics plus the
// sample report as JSON to the given file.
//
// With -serve the process skips the one-shot query batch and instead runs the
// preprocessed network as a long-running query service (internal/serve): an
// HTTP/JSON API on -addr with bounded-queue admission control, live Prometheus
// /metrics, optional streaming JSON export (-serve-export), and — when -churn
// is set — a live crash/recover schedule applied while traffic is served.
// SIGINT/SIGTERM drains gracefully.
//
// With -serve -cluster N the service becomes resilient and multi-instance
// (internal/cluster): N in-process backends, each a full serve.Server with
// its own engine and plan cache, behind a gateway on -addr that spatially
// shards queries with replica factor -replicas, health-checks /readyz,
// breaks circuits on failing backends, retries with jittered backoff, hedges
// the tail when -hedge is set, and degrades gracefully when a whole replica
// set is down. -chaos replays a fault schedule (kill/pause/resume/slow)
// against the backends while traffic is served. The drain rollup pins the
// no-loss invariant ("lost 0").
//
// Usage:
//
//	hybridroute [-n 600] [-holes 3] [-queries 200] [-seed 1] [-scenario uniform|city|maze|grid]
//	            [-abstraction hull|bbox] [-batch] [-workers 0] [-cache 4096]
//	            [-loss 0.05] [-crash 5] [-churn 4] [-retries 3] [-lossaware]
//	            [-adversary 0.2 | -adversary 0.2,misroute+forge]
//	            [-trace FILE] [-pprof FILE]
//	            [-serve] [-addr :8080] [-serve-export FILE]
//	            [-cluster 3] [-replicas 2] [-hedge 20ms] [-chaos "kill@5s:1,slow@10s:2:50ms"]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hybridroute/internal/abstraction"
	"hybridroute/internal/cluster"
	"hybridroute/internal/core"
	"hybridroute/internal/geom"
	"hybridroute/internal/serve"
	"hybridroute/internal/sim"
	"hybridroute/internal/stats"
	"hybridroute/internal/trace"
	"hybridroute/internal/workload"
)

func main() {
	n := flag.Int("n", 600, "number of nodes")
	holes := flag.Int("holes", 3, "number of convex obstacles (uniform scenario)")
	queries := flag.Int("queries", 200, "routing queries to run")
	seed := flag.Int64("seed", 1, "random seed")
	scenario := flag.String("scenario", "uniform", "scenario: uniform, city, maze or grid (bordered grid with O(1) holes; use with -static for large -n)")
	router := flag.String("router", "hull", "routing variant: hull (Sec. 4) or visibility (Sec. 3)")
	abstraction := flag.String("abstraction", "", "hole abstraction backend: hull (default, convex hulls) or bbox (bounding-box overlay, tolerates intersecting hulls)")
	batch := flag.Bool("batch", false, "answer queries through the concurrent batch engine")
	workers := flag.Int("workers", 0, "batch engine worker pool size (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache", 0, "batch engine plan cache entries (0 = default 4096, negative = disabled)")
	loss := flag.Float64("loss", 0, "message loss probability per link class; > 0 adds a fault-injected delivery run")
	crash := flag.Int("crash", 0, "number of crashed nodes to inject into the delivery run")
	churn := flag.Int("churn", 0, "number of seeded crash+recover cycles replayed while the delivery run is in flight")
	retries := flag.Int("retries", core.DefaultRetries, "per-hop retry budget for fault-injected delivery")
	lossAware := flag.Bool("lossaware", false, "plan around observed lossy links (ETX weights) in the delivery run")
	adversary := flag.String("adversary", "", "Byzantine adversaries in the delivery run: FRAC[,BEHAVIORS] e.g. 0.2 or 0.2,misroute+forge (behaviors: misroute, drop, forge, lie, all; default all); engages verified delivery + reputation-weighted planning")
	traceFile := flag.String("trace", "", "record stack-wide trace events; write metrics + a traced sample query as JSON to this file")
	pprofFile := flag.String("pprof", "", "write a CPU profile of the run to this file")
	static := flag.Bool("static", false, "build the network with the simulator-free static pipeline (identical routing state, no protocol rounds; enables much larger -n)")
	serveMode := flag.Bool("serve", false, "run as a long-running query service (HTTP/JSON API + /metrics) instead of a one-shot batch")
	addr := flag.String("addr", ":8080", "serve mode: HTTP listen address")
	serveExport := flag.String("serve-export", "", "serve mode: append OTLP-style JSON metric batches to this file")
	clusterN := flag.Int("cluster", 0, "serve mode: shard queries across this many backend instances behind a gateway (0 = single server)")
	replicas := flag.Int("replicas", 2, "cluster mode: replica factor R — backends owning each spatial region")
	chaosSpec := flag.String("chaos", "", "cluster mode: instance fault schedule, e.g. \"kill@5s:1,slow@10s:2:50ms,pause@15s:0,resume@20s:0\"")
	hedge := flag.Duration("hedge", 0, "cluster mode: hedge a request to the standby replica after this delay (0 = off)")
	flag.Parse()

	advFrac, advBehaviors, err := parseAdversaryFlag(*adversary)
	if err != nil {
		log.Fatalf("flags: %v", err)
	}
	if err := validateFlags(*loss, *crash, *churn, *retries, *lossAware); err != nil {
		log.Fatalf("flags: %v", err)
	}
	if err := validateNameFlags(*scenario, *router, *abstraction); err != nil {
		log.Fatalf("flags: %v", err)
	}
	if *static && (*loss > 0 || *crash > 0 || (*churn > 0 && !*serveMode) || advFrac > 0 || *traceFile != "") {
		log.Fatal("flags: -static builds no simulator; -loss/-crash/-churn/-adversary/-trace need the distributed pipeline")
	}
	if *serveMode && advFrac > 0 {
		log.Fatal("flags: -adversary configures the one-shot delivery run; serve mode does not inject adversaries")
	}
	if err := validateServeFlags(*serveMode, *static, *batch, *churn, *loss, *crash, *traceFile, *router); err != nil {
		log.Fatalf("flags: %v", err)
	}
	if err := validateClusterFlags(*serveMode, *clusterN, *replicas, *chaosSpec, *hedge, *churn, *serveExport); err != nil {
		log.Fatalf("flags: %v", err)
	}
	stopProfile := func() {}
	if *pprofFile != "" {
		f, err := os.Create(*pprofFile)
		if err != nil {
			log.Fatalf("pprof: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("pprof: %v", err)
		}
		stopProfile = pprof.StopCPUProfile
	}
	defer stopProfile()

	sc, err := buildScenario(*scenario, *seed, *n, *holes)
	if err != nil {
		log.Fatalf("scenario: %v", err)
	}
	fmt.Printf("scenario %q: %d nodes, %d obstacles, radio range %.2f\n",
		sc.Name, len(sc.Points), len(sc.Obstacles), sc.Radius)

	g := sc.Build()
	var nw *core.Network
	var err2 error
	if *static {
		nw, err2 = core.PreprocessStatic(g, core.Config{Abstraction: *abstraction})
	} else {
		nw, err2 = core.Preprocess(g, core.Config{Strict: true, Seed: uint64(*seed), Abstraction: *abstraction})
	}
	if err2 != nil {
		log.Fatalf("preprocess: %v", err2)
	}
	var tracer *trace.Tracer
	if *traceFile != "" {
		tracer = trace.New(0)
		nw.SetTracer(tracer)
	}
	r := nw.Report
	if *static {
		fmt.Println("\npreprocessing: static pipeline (no protocol rounds simulated)")
	} else {
		fmt.Printf("\npreprocessing: %d rounds total (LDel %d, rings %d, tree %d, flood %d, domset %d)\n",
			r.Rounds.Total, r.Rounds.LDel, r.Rounds.Rings, r.Rounds.Tree, r.Rounds.Flood, r.Rounds.DomSet)
	}
	fmt.Printf("holes: %d (hull nodes %d, boundary nodes %d), tree height %d\n",
		r.NumHoles, r.NumHullNodes, r.NumBoundaryNodes, r.TreeHeight)
	fmt.Printf("max communication work per node: %d messages / %d words\n", r.MaxMsgs, r.MaxWords)
	fmt.Printf("storage (words): hull %d, boundary %d, other %d (abstraction: %s)\n",
		r.StorageHull, r.StorageBoundary, r.StorageOther, r.Abstraction)
	if r.HullsIntersect {
		fmt.Println("WARNING: hole hulls intersect; the paper's competitiveness assumption is violated")
	}

	if *serveMode {
		if *clusterN > 0 {
			if err := runCluster(nw, *addr, *clusterN, *replicas, *chaosSpec, *hedge, *workers, *cacheSize, *seed); err != nil {
				log.Fatalf("cluster: %v", err)
			}
		} else if err := runServe(nw, *addr, *serveExport, *workers, *cacheSize, *churn, *seed); err != nil {
			log.Fatalf("serve: %v", err)
		}
		return
	}

	rng := rand.New(rand.NewSource(*seed + 99))
	var pairs []core.Query
	for len(pairs) < *queries {
		s := sim.NodeID(rng.Intn(g.N()))
		t := sim.NodeID(rng.Intn(g.N()))
		if s != t {
			pairs = append(pairs, core.Query{S: s, T: t})
		}
	}

	var outcomes []core.Outcome
	switch {
	case *batch && *router == "visibility":
		log.Fatal("-batch currently supports the hull router only")
	case *batch:
		eng := core.NewEngine(nw, core.EngineConfig{Workers: *workers, CacheSize: *cacheSize})
		eng.SetTracer(tracer)
		start := time.Now()
		outcomes = eng.RouteBatch(pairs)
		dur := time.Since(start)
		st := eng.Stats()
		fmt.Printf("\nbatch engine: %d queries in %s (%.0f queries/s, %d workers)\n",
			len(pairs), dur.Round(time.Microsecond), float64(len(pairs))/dur.Seconds(), eng.Workers())
		fmt.Printf("plan cache: %d hits / %d misses (rate %.2f), %d entries, %d evictions\n",
			st.Hits, st.Misses, st.HitRate(), st.Entries, st.Evictions)
	default:
		outcomes = make([]core.Outcome, len(pairs))
		for i, p := range pairs {
			if *router == "visibility" {
				outcomes[i] = nw.RouteVisibility(p.S, p.T)
			} else {
				outcomes[i] = nw.Route(p.S, p.T)
			}
		}
	}

	var stretches []float64
	delivered, fallbacks := 0, 0
	cases := map[int]int{}
	for i, out := range outcomes {
		cases[out.Case]++
		if !out.Reached {
			continue
		}
		delivered++
		if out.PlanFallback {
			fallbacks++
		}
		if _, opt, ok := g.ShortestPath(pairs[i].S, pairs[i].T); ok && opt > 0 {
			stretches = append(stretches, out.Length(nw.LDel)/opt)
		}
	}
	sum := stats.Summarize(stretches)
	fmt.Printf("\nrouting %d queries: delivered %d, plan fallbacks %d\n", *queries, delivered, fallbacks)
	fmt.Printf("position cases (Sec 4.3): %v\n", cases)
	fmt.Printf("stretch vs UDG shortest path: mean %.3f, p95 %.3f, max %.3f (paper bound 35.37)\n",
		sum.Mean, sum.P95, sum.Max)
	if sum.Max > 35.37 {
		fmt.Println("NOTE: max stretch exceeds the overlay bound (degenerate geometry or intersecting hulls)")
		stopProfile()
		os.Exit(1)
	}

	// Fault-injected delivery run: only when requested, so the default output
	// stays byte-identical to earlier releases.
	if *loss > 0 || *crash > 0 || *churn > 0 || advFrac > 0 {
		runFaultedDelivery(nw, pairs, *loss, *crash, *churn, *retries, *seed, *lossAware, advFrac, advBehaviors)
	}

	if tracer != nil {
		if err := writeTraceOutput(*traceFile, nw, tracer, pairs); err != nil {
			log.Fatalf("trace: %v", err)
		}
	}
}

// parseAdversaryFlag parses -adversary's "FRAC[,BEHAVIORS]" form: a node
// fraction in (0, 1], optionally followed by a '+'-separated behavior list
// understood by sim.ParseBehaviors ("" selects every behavior).
func parseAdversaryFlag(s string) (float64, sim.AdversaryBehavior, error) {
	if s == "" {
		return 0, 0, nil
	}
	fracStr, behavStr := s, ""
	if i := strings.IndexByte(s, ','); i >= 0 {
		fracStr, behavStr = s[:i], s[i+1:]
	}
	frac, err := strconv.ParseFloat(fracStr, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("-adversary %q: fraction %q is not a number", s, fracStr)
	}
	if frac <= 0 || frac > 1 {
		return 0, 0, fmt.Errorf("-adversary %q: fraction %v must be in (0, 1]", s, frac)
	}
	behaviors, err := sim.ParseBehaviors(behavStr)
	if err != nil {
		return 0, 0, fmt.Errorf("-adversary %q: %v", s, err)
	}
	return frac, behaviors, nil
}

// validateFlags rejects fault-model flag combinations that would otherwise
// run silently with surprising semantics: probabilities outside [0, 1],
// negative counts, and -lossaware without any fault-injected delivery run to
// act on.
func validateFlags(loss float64, crash, churn, retries int, lossAware bool) error {
	if loss < 0 || loss > 1 {
		return fmt.Errorf("-loss %v is not a probability in [0, 1]", loss)
	}
	if crash < 0 {
		return fmt.Errorf("-crash %d must be >= 0", crash)
	}
	if churn < 0 {
		return fmt.Errorf("-churn %d must be >= 0", churn)
	}
	if retries < 0 {
		return fmt.Errorf("-retries %d must be >= 0 (0 means the default of %d)", retries, core.DefaultRetries)
	}
	if lossAware && loss == 0 && crash == 0 && churn == 0 {
		return fmt.Errorf("-lossaware needs a fault-injected delivery run: set -loss, -crash and/or -churn")
	}
	return nil
}

// validateNameFlags rejects unknown enum-valued flags up front. These used to
// be accepted silently: an unknown -scenario fell through to uniform, an
// unknown -router fell through to hull, and an unknown -abstraction only
// failed deep inside preprocessing — so a typo like -scenario=mase ran the
// wrong experiment without a word.
func validateNameFlags(scenario, router, abs string) error {
	switch scenario {
	case "uniform", "city", "maze", "grid":
	default:
		return fmt.Errorf("unknown -scenario %q (want uniform, city, maze or grid)", scenario)
	}
	switch router {
	case "hull", "visibility":
	default:
		return fmt.Errorf("unknown -router %q (want hull or visibility)", router)
	}
	if abs != "" {
		known := false
		for _, name := range abstraction.Names() {
			if abs == name {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("unknown -abstraction %q (want one of %v)", abs, abstraction.Names())
		}
	}
	return nil
}

// validateServeFlags rejects serve-mode combinations whose one-shot semantics
// do not carry over, instead of silently ignoring the flag.
func validateServeFlags(serveMode, static, batch bool, churn int, loss float64, crash int, traceFile, router string) error {
	if !serveMode {
		return nil
	}
	if batch {
		return fmt.Errorf("-serve already routes through the batch engine; drop -batch")
	}
	if static && churn > 0 {
		return fmt.Errorf("-serve with -churn needs the simulator pipeline; drop -static")
	}
	if loss > 0 || crash > 0 {
		return fmt.Errorf("-loss/-crash configure the one-shot delivery run; serve mode supports live churn only (-churn)")
	}
	if traceFile != "" {
		return fmt.Errorf("-trace writes a post-run dump; serve mode streams metrics instead (use -serve-export)")
	}
	if router != "hull" {
		return fmt.Errorf("-serve supports the hull router only (got -router %q)", router)
	}
	return nil
}

// validateClusterFlags rejects cluster-mode combinations: the gateway tier
// rides on serve mode, and the per-instance features that assume a single
// server (live churn, streaming export) are not plumbed through it.
func validateClusterFlags(serveMode bool, clusterN, replicas int, chaosSpec string, hedge time.Duration, churn int, serveExport string) error {
	if clusterN == 0 {
		if chaosSpec != "" {
			return fmt.Errorf("-chaos injects instance faults; it needs -cluster")
		}
		if hedge != 0 {
			return fmt.Errorf("-hedge races replicas; it needs -cluster")
		}
		return nil
	}
	if clusterN < 0 {
		return fmt.Errorf("-cluster must be >= 0, got %d", clusterN)
	}
	if !serveMode {
		return fmt.Errorf("-cluster shards the query service; it needs -serve")
	}
	if replicas < 1 || replicas > clusterN {
		return fmt.Errorf("-replicas must be in [1, %d] (the -cluster size), got %d", clusterN, replicas)
	}
	if hedge < 0 {
		return fmt.Errorf("-hedge must be >= 0, got %v", hedge)
	}
	if churn > 0 {
		return fmt.Errorf("-churn drives a single server's live membership; cluster mode injects faults with -chaos instead")
	}
	if serveExport != "" {
		return fmt.Errorf("-serve-export streams one instance's metrics; cluster mode serves the gateway rollup on /metrics instead")
	}
	if chaosSpec != "" {
		if _, err := cluster.ParseChaosSpec(chaosSpec, clusterN); err != nil {
			return fmt.Errorf("-chaos: %w", err)
		}
	}
	return nil
}

// runCluster runs the preprocessed network as a resilient multi-instance
// service: n in-process backends behind the sharding gateway, an optional
// chaos schedule replayed against them, until SIGINT/SIGTERM. The drain
// rollup prints per-instance accepted/completed and pins the no-loss
// invariant ("lost 0") that CI greps for.
func runCluster(nw *core.Network, addr string, n, replicas int, chaosSpec string, hedge time.Duration, workers, cacheSize int, seed int64) error {
	instances, err := cluster.SpawnInstances(nw, n, cluster.InstanceOptions{Workers: workers, CacheSize: cacheSize})
	if err != nil {
		return err
	}
	g, err := cluster.NewGateway(nw, cluster.FromInstances(instances), cluster.Config{
		Replicas:   replicas,
		HedgeDelay: hedge,
		Seed:       uint64(seed),
	})
	if err != nil {
		return err
	}
	g.Start()
	defer g.Close()

	chaosStop := make(chan struct{})
	chaosDone := make(chan struct{})
	if chaosSpec != "" {
		sch, err := cluster.ParseChaosSpec(chaosSpec, n)
		if err != nil {
			return err
		}
		go func() { defer close(chaosDone); sch.Apply(chaosStop, instances) }()
	} else {
		close(chaosDone)
	}

	hs := &http.Server{Addr: addr, Handler: g.Handler()}
	errCh := make(chan error, 1)
	go func() {
		if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errCh <- err
		}
	}()
	fmt.Printf("\ncluster gateway on %s: %d backends, R=%d, hedge %v, chaos %q\n", addr, n, replicas, hedge, chaosSpec)
	for _, in := range instances {
		fmt.Printf("  backend %s at %s\n", in.ID, in.URL())
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Printf("received %v, draining cluster\n", sig)
	case err := <-errCh:
		close(chaosStop)
		<-chaosDone
		return err
	}
	close(chaosStop)
	<-chaosDone

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return err
	}
	var accepted, completed uint64
	survivors := 0
	for _, in := range instances {
		killed := in.Killed()
		if !killed {
			if err := in.Drain(ctx); err != nil {
				return fmt.Errorf("drain %s: %w", in.ID, err)
			}
			survivors++
		}
		st := in.Server.ServerStats()
		state := "drained"
		if killed {
			state = "killed"
		}
		fmt.Printf("  backend %s %s: accepted %d, completed %d\n", in.ID, state, st.Accepted, st.Completed)
		if !killed {
			accepted += st.Accepted
			completed += st.Completed
		}
	}
	gst := g.Stats()
	fmt.Printf("cluster drained: %d/%d backends survived; requests %d, answered %d, degraded %d, shed %d, failovers %d, hedge wins %d, lost %d\n",
		survivors, n, gst.Requests, gst.Answered, gst.Degraded, gst.Shed, gst.Failovers, gst.HedgeWins, accepted-completed)
	return nil
}

// runServe runs the preprocessed network as a long-running query service until
// SIGINT/SIGTERM, then drains. churn > 0 schedules that many live
// crash+recover cycles (one crash every 15s, recovery 5s later) applied while
// traffic is served.
func runServe(nw *core.Network, addr, exportPath string, workers, cacheSize, churn int, seed int64) error {
	tracer := trace.New(0)
	nw.SetTracer(tracer)
	eng := core.NewEngine(nw, core.EngineConfig{Workers: workers, CacheSize: cacheSize})
	eng.SetTracer(tracer)

	cfg := serve.Config{Tracer: tracer}
	if exportPath != "" {
		f, err := os.OpenFile(exportPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		cfg.Export = f
	}
	if churn > 0 {
		rng := rand.New(rand.NewSource(seed + 7))
		for i := 0; i < churn; i++ {
			v := sim.NodeID(rng.Intn(nw.G.N()))
			at := time.Duration(i+1) * 15 * time.Second
			cfg.Churn = append(cfg.Churn,
				serve.ChurnEvent{After: at, Node: v},
				serve.ChurnEvent{After: at + 5*time.Second, Node: v, Up: true})
		}
	}
	srv, err := serve.New(eng, cfg)
	if err != nil {
		return err
	}
	srv.Start()

	hs := &http.Server{Addr: addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() {
		if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errCh <- err
		}
	}()
	fmt.Printf("\nserving on %s (POST /route, GET /metrics, /healthz, /stats); %d live churn cycles scheduled\n",
		addr, churn)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Printf("received %v, draining\n", sig)
	case err := <-errCh:
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := hs.Shutdown(ctx); err != nil {
		return err
	}
	st := srv.ServerStats()
	fmt.Printf("drained: accepted %d, completed %d, shed %d (full) + %d (fairness), expired %d, churn events %d, topology generation %d\n",
		st.Accepted, st.Completed, st.ShedFull, st.ShedFair, st.Expired, st.ChurnEvents, st.TopoGeneration)
	return nil
}

// writeTraceOutput runs one traced sample query (the first workload pair),
// prints its per-hop report, and writes the aggregated stack-wide metrics
// plus that report as JSON to path.
func writeTraceOutput(path string, nw *core.Network, tracer *trace.Tracer, pairs []core.Query) error {
	var report *core.TraceReport
	if len(pairs) > 0 {
		r, _, err := nw.TraceQuery(pairs[0].S, pairs[0].T, core.TransportOptions{PayloadWords: 32})
		if err != nil {
			fmt.Printf("\ntraced sample query %d->%d failed: %v\n", pairs[0].S, pairs[0].T, err)
		} else {
			report = r
			fmt.Printf("\ntraced sample query:\n%s", r)
		}
	}
	reg := trace.NewRegistry()
	reg.MergeEvents(tracer.Events())
	fmt.Printf("\ntrace: %d events recorded (%d dropped past the buffer limit)\n", tracer.Len(), tracer.Dropped())
	fmt.Print(reg.PrometheusText())
	blob, err := json.MarshalIndent(struct {
		Metrics *trace.Registry   `json:"metrics"`
		Sample  *core.TraceReport `json:"sample,omitempty"`
		Events  int               `json:"events"`
		Dropped uint64            `json:"events_dropped"`
	}{reg, report, tracer.Len(), tracer.Dropped()}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// runFaultedDelivery installs the seeded fault model and re-answers the query
// workload as actual payload deliveries on the simulator, reporting how many
// survive message loss, crashed nodes, mid-run churn and Byzantine
// adversaries through retries, replanning, topology repair, suspect
// failover, verified delivery and reputation-weighted planning.
func runFaultedDelivery(nw *core.Network, pairs []core.Query, loss float64, crash, churn, retries int, seed int64, lossAware bool, advFrac float64, advBehaviors sim.AdversaryBehavior) {
	rng := rand.New(rand.NewSource(seed + 7))
	crashed := make([]sim.NodeID, 0, crash)
	isCrashed := make(map[sim.NodeID]bool)
	for len(crashed) < crash && len(crashed) < nw.G.N()/2 {
		v := sim.NodeID(rng.Intn(nw.G.N()))
		if !isCrashed[v] {
			isCrashed[v] = true
			crashed = append(crashed, v)
		}
	}
	cfg := sim.FaultConfig{AdHocLoss: loss, LongLoss: loss, Seed: uint64(seed) + 7, Crashed: crashed}
	if advFrac > 0 {
		// Query endpoints are exempt from the election so the workload stays
		// answerable — adversarial sources/destinations are the collusion
		// scenario E22 demonstrates, not this run's subject.
		exempt := make([]sim.NodeID, 0, 2*len(pairs))
		for _, p := range pairs {
			exempt = append(exempt, p.S, p.T)
		}
		cfg.Adversary = sim.AdversaryConfig{Fraction: advFrac, Behaviors: advBehaviors, Exempt: exempt}
	}
	if churn > 0 {
		// Protect static crash victims (already skipped as endpoints) and
		// every query endpoint, so churn never makes a pair undeliverable.
		protect := append([]sim.NodeID{}, crashed...)
		for _, p := range pairs {
			protect = append(protect, p.S, p.T)
		}
		cfg.Churn = sim.GenerateChurn(uint64(seed)+7, nw.G.N(), len(pairs)*10, churn, 30, protect)
	}
	if err := nw.Sim.SetFaults(cfg); err != nil {
		log.Fatalf("faults: %v", err)
	}
	topt := core.TransportOptions{PayloadWords: 32, Retries: retries, Reliable: true}
	if lossAware {
		topt.LossAware = core.LossAwareOn
	}
	if advFrac > 0 {
		topt.Reputation = core.ReputationOn
	}
	delivered, attempted, retrans, replans, detours, skipped := 0, 0, 0, 0, 0, 0
	suspected, suspectDetours := 0, 0
	verified, e2eResends, misrouteDet := 0, 0, 0
	var failures []string
	for _, p := range pairs {
		if isCrashed[p.S] || isCrashed[p.T] {
			skipped++ // a crashed endpoint cannot take part in a query
			continue
		}
		attempted++
		rep, err := nw.RouteOnSimOpt(p.S, p.T, topt)
		if err != nil {
			if len(failures) < 3 {
				failures = append(failures, err.Error())
			}
			continue
		}
		if rep.DeliveredSim {
			delivered++
		}
		retrans += rep.Retransmits
		replans += rep.Replans
		detours += rep.Detours
		suspected += rep.Suspected
		suspectDetours += rep.SuspectDetours
		if rep.Verified {
			verified++
		}
		e2eResends += rep.E2EResends
		misrouteDet += rep.MisrouteDetected
	}
	advNote := ""
	if advFrac > 0 {
		advNote = fmt.Sprintf(", %.0f%% adversarial", 100*advFrac)
	}
	fmt.Printf("\nfault-injected delivery (loss %.3f, %d crashed, %d churn cycles, %d retries/hop%s):\n",
		loss, len(crashed), churn, retries, advNote)
	fmt.Printf("delivered %d/%d (%.1f%%), skipped %d with crashed endpoints\n",
		delivered, attempted, 100*float64(delivered)/float64(max(attempted, 1)), skipped)
	fmt.Printf("retransmissions %d, source replans %d\n", retrans, replans)
	if churn > 0 {
		rs := nw.RepairReport()
		fmt.Printf("churn: topology generation %d, repairs %d (%d incremental, %d full, %d restores)\n",
			nw.TopoGeneration(), rs.Repairs, rs.Incremental, rs.Full, rs.Restores)
		fmt.Printf("suspect failover: %d next hops suspected, %d suspect detours\n", suspected, suspectDetours)
	}
	if advFrac > 0 {
		adv := nw.Sim.AdversaryCounters()
		fmt.Printf("adversaries (%.0f%% of nodes, behaviors %s): %d misroutes, %d forged acks, %d selective drops\n",
			100*advFrac, advBehaviors, adv.Misrouted, adv.ForgedAcks, adv.SelectiveDrops)
		fmt.Printf("verified delivery: %d/%d confirmed end to end, %d e2e relaunches, %d misroutes detected\n",
			verified, delivered, e2eResends, misrouteDet)
		if nw.Rep != nil {
			fmt.Printf("reputation: generation %d (recovery replans tie-break on per-node delivery trust)\n",
				nw.Rep.Generation())
		}
	}
	if lossAware {
		fmt.Printf("loss-aware detours %d\n", detours)
		printLinkSummary(nw)
	}
	for _, f := range failures {
		fmt.Printf("failure: %s\n", f)
	}
}

// printLinkSummary reports what the ack-telemetry estimator learned during the
// delivery run: how many directed links carry a loss estimate and the worst
// offenders by estimated loss.
func printLinkSummary(nw *core.Network) {
	ests := nw.Link.Snapshot()
	if len(ests) == 0 {
		fmt.Println("link telemetry: no loss observed")
		return
	}
	sort.Slice(ests, func(i, j int) bool { return ests[i].Loss > ests[j].Loss })
	fmt.Printf("link telemetry: %d directed links with a loss estimate (generation %d)\n",
		len(ests), nw.Link.Generation())
	top := ests
	if len(top) > 5 {
		top = top[:5]
	}
	for _, e := range top {
		fmt.Printf("  worst link %d->%d: estimated loss %.2f (ETX %.2f)\n",
			e.From, e.To, e.Loss, nw.Link.ETX(e.From, e.To))
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func buildScenario(kind string, seed int64, n, holes int) (*workload.Scenario, error) {
	switch kind {
	case "city":
		return workload.CityGrid(seed, 3, 3, 3, 3, 2.2, 1, 5.5)
	case "maze":
		return workload.Maze(seed, 14, 10, 7, 8.4, 1.2, 1, n)
	case "grid":
		// Bordered jittered grid with two fixed-size central obstacles: the
		// hole count stays O(1) as n grows (uniform placement sprouts holes
		// linearly in n, and the hole-dependent build costs are superlinear
		// in hole corners), so this is the scenario that reaches 10^5-10^6
		// nodes with -static. Same geometry as the BenchmarkScale series.
		const spacing = 0.55
		cols := int(math.Round(math.Sqrt(float64(n))))
		if cols < 8 {
			cols = 8
		}
		side := float64(cols-1)*spacing + spacing/10
		c := side / 2
		obstacles := [][]geom.Point{
			workload.StarPolygon(geom.Pt(c, c+0.2), 1.6, 0.7, 5, 0.3),
			workload.RegularPolygon(geom.Pt(c+4.4, c+3.6), 1.3, 6, 0.2),
		}
		return workload.BorderedGrid(spacing, side, side, 1, obstacles)
	default:
		side := math.Sqrt(float64(n)) * 0.42
		if side < 6 {
			side = 6
		}
		obstacles := workload.RandomConvexObstacles(seed, holes, side, side, side/8, side/5, 1.2)
		return workload.WithObstacles(seed, n, side, side, 1, obstacles)
	}
}
