package delaunay_test

import (
	"fmt"

	"hybridroute/internal/delaunay"
	"hybridroute/internal/geom"
	"hybridroute/internal/udg"
)

func ExampleTriangulate() {
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(2, 0), geom.Pt(2, 2), geom.Pt(0, 2), geom.Pt(1, 1),
	}
	tr := delaunay.Triangulate(pts)
	fmt.Println("triangles:", len(tr.Triangles()))
	fmt.Println("edges:", len(tr.Edges()))
	// Output:
	// triangles: 4
	// edges: 8
}

func ExampleLDelK() {
	// A 3x3 grid with unit radio range: every edge of the 2-localized
	// Delaunay graph respects the transmission range.
	var pts []geom.Point
	for x := 0.0; x < 3; x++ {
		for y := 0.0; y < 3; y++ {
			pts = append(pts, geom.Pt(x*0.7, y*0.7+0.01*x))
		}
	}
	g := udg.Build(pts, 1)
	ld := delaunay.LDelK(g, 2)
	ok := true
	for _, e := range ld.Edges() {
		if g.Point(udg.NodeID(e[0])).Dist(g.Point(udg.NodeID(e[1]))) > 1 {
			ok = false
		}
	}
	fmt.Println("all edges within range:", ok)
	fmt.Println("connected:", ld.Connected())
	// Output:
	// all edges within range: true
	// connected: true
}
