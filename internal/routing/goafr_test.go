package routing

import (
	"math"
	"math/rand"
	"testing"

	"hybridroute/internal/delaunay"
	"hybridroute/internal/geom"
	"hybridroute/internal/udg"
)

// mazeRouter builds a wall-with-gap scenario where the gap lies far outside
// the initial GOAFR ellipse, forcing ellipse doubling.
func mazeRouter(t testing.TB) (*udg.Graph, *Router, NodeID, NodeID) {
	t.Helper()
	var pts []geom.Point
	for x := 0.0; x <= 12; x += 0.55 {
		for y := 0.0; y <= 9; y += 0.55 {
			// Wall at x∈[5.8,6.6] with a gap only at the very top (y > 8).
			if x > 5.8 && x < 6.6 && y < 8 {
				continue
			}
			pts = append(pts, geom.Pt(x+1e-4*math.Sin(9*x+4*y), y+1e-4*math.Cos(5*x-3*y)))
		}
	}
	g := udg.Build(pts, 1)
	if !g.Connected() {
		t.Fatal("maze disconnected")
	}
	r := New(delaunay.LDelK(g, 2))
	s := nodeNear(g, geom.Pt(4.5, 1))
	d := nodeNear(g, geom.Pt(8, 1))
	return g, r, s, d
}

func TestGOAFREllipseDoubling(t *testing.T) {
	g, r, s, d := mazeRouter(t)
	// The direct distance is ~3.5 but the detour through the gap is ~16+:
	// the initial 1.4x ellipse cannot contain the gap, so GOAFR must double.
	res := r.GOAFR(s, d)
	if !res.Reached {
		t.Fatal("GOAFR must deliver after enlarging the ellipse")
	}
	direct := g.Point(s).Dist(g.Point(d))
	if res.Length(r.Graph()) < 2*direct {
		t.Fatalf("path length %.1f suspiciously short for a %.1f-wide wall detour",
			res.Length(r.Graph()), direct)
	}
	for i := 1; i < len(res.Path); i++ {
		if !r.Graph().HasEdge(res.Path[i-1], res.Path[i]) {
			t.Fatalf("path step %d invalid", i)
		}
	}
}

func TestGOAFRVersusGreedyFaceOnMaze(t *testing.T) {
	_, r, s, d := mazeRouter(t)
	gf := r.GreedyFace(s, d)
	ga := r.GOAFR(s, d)
	if !gf.Reached || !ga.Reached {
		t.Fatal("both recovery routers must deliver")
	}
	if gr := r.Greedy(s, d); gr.Reached {
		t.Fatal("greedy should fail at the wall")
	}
}

func TestGOAFRRandomPairsConsistent(t *testing.T) {
	g, r, _, _ := mazeRouter(t)
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 40; trial++ {
		s := NodeID(rng.Intn(g.N()))
		d := NodeID(rng.Intn(g.N()))
		res := r.GOAFR(s, d)
		if !res.Reached {
			t.Fatalf("GOAFR failed %d->%d", s, d)
		}
		if res.Path[0] != s || res.Path[len(res.Path)-1] != d {
			t.Fatalf("endpoints wrong for %d->%d", s, d)
		}
	}
}

func TestChewViaEmptyAndSingle(t *testing.T) {
	_, r, _, _ := mazeRouter(t)
	if res := r.ChewVia(nil); res.Reached || len(res.Path) != 0 {
		t.Error("empty waypoint list")
	}
	if res := r.ChewVia([]NodeID{5}); !res.Reached || len(res.Path) != 1 {
		t.Error("single waypoint = already there")
	}
}

func TestNextFaceVertexCWInvertsCCW(t *testing.T) {
	_, r, _, _ := mazeRouter(t)
	// For any edge (a,b): nextCW after next̄CCW steps should relate through
	// the rotation system; specifically CW(b, CCW-next) must return to a
	// neighbour set member. Sanity: both directions yield valid neighbours.
	g := r.Graph()
	for v := 0; v < 40; v++ {
		nbrs := g.Neighbors(NodeID(v))
		if len(nbrs) == 0 {
			continue
		}
		b := nbrs[0]
		ccw := r.nextFaceVertex(NodeID(v), b)
		cw := r.nextFaceVertexCW(NodeID(v), b)
		if !g.HasEdge(b, ccw) || !g.HasEdge(b, cw) {
			t.Fatalf("rotation successors of (%d,%d) invalid", v, b)
		}
	}
}
