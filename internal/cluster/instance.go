// In-process serve backends: each Instance is a full serve.Server (its own
// engine and plan cache over the shared read-only Network) listening on its
// own loopback socket, wrapped in a chaos shim that can kill, pause/resume or
// slow the instance without the server's cooperation — the faults arrive at
// the process boundary, exactly where a real deployment's would.

package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"hybridroute/internal/core"
	"hybridroute/internal/serve"
)

// InstanceOptions tunes the spawned backends.
type InstanceOptions struct {
	// Workers / CacheSize size each backend's engine; <= 0 means the serve
	// and engine defaults.
	Workers   int
	CacheSize int
	// QueueSize bounds each backend's admission queue; <= 0 means the serve
	// default.
	QueueSize int
}

// Instance is one in-process backend: serve.Server + HTTP listener + chaos
// hooks. Create with SpawnInstances.
type Instance struct {
	Index  int
	ID     string
	Server *serve.Server

	hs  *http.Server
	ln  net.Listener
	url string

	slowNs atomic.Int64
	killed atomic.Bool

	// gate is non-nil while paused; requests park on it in the shim.
	gateMu sync.Mutex
	gate   chan struct{}
}

// SpawnInstances builds and starts n backends over one shared preprocessed
// network (the network is read-only on the query path, so instances share it
// safely; each has a private engine and plan cache). Instance IDs are
// "i0".."iN-1"; each listens on its own 127.0.0.1 ephemeral port.
func SpawnInstances(nw *core.Network, n int, opt InstanceOptions) ([]*Instance, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: need at least 1 instance, got %d", n)
	}
	instances := make([]*Instance, 0, n)
	fail := func(err error) ([]*Instance, error) {
		for _, in := range instances {
			in.Kill()
		}
		return nil, err
	}
	for i := 0; i < n; i++ {
		eng := core.NewEngine(nw, core.EngineConfig{Workers: opt.Workers, CacheSize: opt.CacheSize})
		srv, err := serve.New(eng, serve.Config{
			InstanceID: fmt.Sprintf("i%d", i),
			Workers:    opt.Workers,
			QueueSize:  opt.QueueSize,
		})
		if err != nil {
			return fail(fmt.Errorf("cluster: instance %d: %w", i, err))
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fail(fmt.Errorf("cluster: instance %d listen: %w", i, err))
		}
		in := &Instance{
			Index:  i,
			ID:     fmt.Sprintf("i%d", i),
			Server: srv,
			ln:     ln,
			url:    "http://" + ln.Addr().String(),
		}
		in.hs = &http.Server{Handler: in.shim(srv.Handler())}
		srv.Start()
		go func() { _ = in.hs.Serve(ln) }()
		instances = append(instances, in)
	}
	return instances, nil
}

// URL is the backend's base URL (http://127.0.0.1:PORT).
func (in *Instance) URL() string { return in.url }

// shim is the chaos middleware: every request first parks on the pause gate,
// then sleeps the injected latency, then reaches the real handler.
func (in *Instance) shim(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		in.gateMu.Lock()
		gate := in.gate
		in.gateMu.Unlock()
		if gate != nil {
			select {
			case <-gate:
			case <-r.Context().Done():
				return
			}
		}
		if d := in.slowNs.Load(); d > 0 {
			select {
			case <-time.After(time.Duration(d)):
			case <-r.Context().Done():
				return
			}
		}
		h.ServeHTTP(w, r)
	})
}

// Kill abruptly terminates the instance's HTTP face: the listener closes and
// every active connection is reset. In-flight requests are lost from the
// client's point of view — which is the failure the gateway's failover must
// absorb. Idempotent.
func (in *Instance) Kill() {
	if in.killed.Swap(true) {
		return
	}
	in.Resume() // a paused instance must not leave requests parked forever
	_ = in.hs.Close()
}

// Killed reports whether Kill has been called.
func (in *Instance) Killed() bool { return in.killed.Load() }

// Pause stalls the instance: requests block before reaching the server until
// Resume. Idempotent.
func (in *Instance) Pause() {
	in.gateMu.Lock()
	if in.gate == nil {
		in.gate = make(chan struct{})
	}
	in.gateMu.Unlock()
}

// Resume releases a paused instance. Idempotent.
func (in *Instance) Resume() {
	in.gateMu.Lock()
	if in.gate != nil {
		close(in.gate)
		in.gate = nil
	}
	in.gateMu.Unlock()
}

// Slow injects d of latency in front of every request; 0 clears it.
func (in *Instance) Slow(d time.Duration) { in.slowNs.Store(int64(d)) }

// Drain gracefully stops the instance: the serve layer empties its queue
// (accepted == completed), then the HTTP server shuts down. A killed
// instance drains only its serve side (the HTTP face is already gone).
func (in *Instance) Drain(ctx context.Context) error {
	err := in.Server.Shutdown(ctx)
	if !in.killed.Swap(true) {
		in.Resume()
		if herr := in.hs.Shutdown(ctx); err == nil {
			err = herr
		}
	}
	return err
}
