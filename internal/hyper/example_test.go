package hyper_test

import (
	"fmt"
	"math"

	"hybridroute/internal/geom"
	"hybridroute/internal/hyper"
	"hybridroute/internal/sim"
	"hybridroute/internal/udg"
)

// Example runs the full ring protocol suite (Section 5.2–5.4 of the paper)
// on a 16-node hole boundary: pointer jumping elects the leader and yields
// exact ranks, the angle all-reduce classifies the ring as a hole, and the
// distributed hull computation leaves every member with the convex hull.
func Example() {
	const k = 16
	pts := make([]geom.Point, k)
	cycle := make([]sim.NodeID, k)
	radius := k * 0.5 / (2 * math.Pi)
	for i := 0; i < k; i++ {
		ang := 2 * math.Pi * float64(i) / k
		pts[i] = geom.Pt(radius*math.Cos(ang), radius*math.Sin(ang))
		cycle[i] = sim.NodeID(i)
	}
	g := udg.Build(pts, 0.7)
	s := sim.New(g, sim.Config{Strict: true})

	results, rounds, err := hyper.RunRings(s, []hyper.RingSpec{{Ring: 0, Cycle: cycle}})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	r := results[0][5] // any member's view
	fmt.Println("leader:", r.Leader)
	fmt.Println("ring size:", r.Size)
	fmt.Println("classified as hole:", r.IsHole())
	fmt.Println("hull vertices:", len(r.Hull))
	fmt.Println("polylog rounds:", rounds < 60)
	// Output:
	// leader: 0
	// ring size: 16
	// classified as hole: true
	// hull vertices: 16
	// polylog rounds: true
}
