package delaunay

import (
	"hybridroute/internal/geom"
	"hybridroute/internal/udg"
)

// Face is a face of the planar embedding, given by its directed boundary
// cycle. Bounded faces are traced counterclockwise (positive area); the
// single unbounded outer face is traced clockwise (negative area).
type Face struct {
	Cycle []udg.NodeID // boundary walk; may repeat nodes at cut vertices
}

// DistinctNodes returns the number of distinct nodes on the face boundary.
func (f Face) DistinctNodes() int {
	set := make(map[udg.NodeID]bool, len(f.Cycle))
	for _, v := range f.Cycle {
		set[v] = true
	}
	return len(set)
}

// area returns the signed area of the face's boundary walk.
func (f Face) area(g *PlanarGraph) float64 {
	poly := make([]geom.Point, len(f.Cycle))
	for i, v := range f.Cycle {
		poly[i] = g.Point(v)
	}
	return geom.PolygonArea(poly)
}

// Polygon returns the face boundary as points.
func (f Face) Polygon(g *PlanarGraph) []geom.Point {
	poly := make([]geom.Point, len(f.Cycle))
	for i, v := range f.Cycle {
		poly[i] = g.Point(v)
	}
	return poly
}

// HasEdge reports whether the undirected edge (a, b) appears on the face
// boundary.
func (f Face) HasEdge(a, b udg.NodeID) bool {
	n := len(f.Cycle)
	for i := 0; i < n; i++ {
		u, v := f.Cycle[i], f.Cycle[(i+1)%n]
		if (u == a && v == b) || (u == b && v == a) {
			return true
		}
	}
	return false
}

// Faces enumerates all faces of the planar embedding using the rotation
// system: from the directed edge (u, v), the next boundary edge is (v, w)
// where w precedes u in the counterclockwise rotation of v. With this rule
// every bounded face is traced counterclockwise (interior to the left) and
// the outer face clockwise. Every directed edge lies on exactly one face.
func (g *PlanarGraph) Faces() []Face {
	type dedge struct{ u, v udg.NodeID }
	visited := make(map[dedge]bool, 2*g.EdgeCount())
	var faces []Face

	for u := 0; u < g.N(); u++ {
		for _, v := range g.adj[u] {
			start := dedge{udg.NodeID(u), v}
			if visited[start] {
				continue
			}
			var cycle []udg.NodeID
			cur := start
			for !visited[cur] {
				visited[cur] = true
				cycle = append(cycle, cur.u)
				w := g.prevInRotation(cur.v, cur.u)
				cur = dedge{cur.v, w}
			}
			faces = append(faces, Face{Cycle: cycle})
		}
	}
	return faces
}

// prevInRotation returns the neighbour of v that immediately precedes u in
// the counterclockwise rotation of v (wrapping around).
func (g *PlanarGraph) prevInRotation(v, u udg.NodeID) udg.NodeID {
	nbrs := g.adj[v]
	for i, w := range nbrs {
		if w == u {
			return nbrs[(i-1+len(nbrs))%len(nbrs)]
		}
	}
	panic("delaunay: rotation lookup for absent edge")
}

// OuterFaceIndex returns the index of the unbounded face in faces: the one
// with the most negative signed area. Returns -1 for an empty graph.
func (g *PlanarGraph) OuterFaceIndex(faces []Face) int {
	best, idx := 0.0, -1
	for i, f := range faces {
		if a := f.area(g); a < best {
			best, idx = a, i
		}
	}
	return idx
}
