// Abstractions: Section 4.1's storage-reduction argument, live. The same
// star-shaped radio hole is abstracted four ways — full boundary polygon,
// locally convex hull (Definition 4.1), convex hull (the paper's choice),
// and a Delaunay overlay of the boundary (Section 3's edge reduction) — and
// the same queries are routed against each representation, trading obstacle
// storage against path stretch.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hybridroute/internal/core"
	"hybridroute/internal/geom"
	"hybridroute/internal/sim"
	"hybridroute/internal/stats"
	"hybridroute/internal/vis"
	"hybridroute/internal/workload"
)

func main() {
	star := workload.StarPolygon(geom.Pt(6, 6), 2.8, 1.5, 7, 0)
	sc, err := workload.JitteredGrid(0.5, 12, 12, 1, [][]geom.Point{star})
	if err != nil {
		log.Fatal(err)
	}
	nw, err := core.Preprocess(sc.Build(), core.Config{Strict: true, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("star hole scenario: %d nodes, %d holes detected\n\n", nw.G.N(), nw.Report.NumHoles)

	// Build the four obstacle representations from the detected holes.
	var boundary, lch, hull [][]geom.Point
	for _, h := range nw.Holes.Holes {
		if len(h.Polygon) < 3 {
			continue
		}
		boundary = append(boundary, h.Polygon)
		lch = append(lch, geom.LocallyConvexHull(h.Polygon, nw.G.Radius()))
		if len(h.Hull) >= 3 {
			hull = append(hull, h.Hull)
		}
	}

	rng := rand.New(rand.NewSource(2))
	var pairs [][2]sim.NodeID
	for len(pairs) < 150 {
		s := sim.NodeID(rng.Intn(nw.G.N()))
		t := sim.NodeID(rng.Intn(nw.G.N()))
		if s != t {
			pairs = append(pairs, [2]sim.NodeID{s, t})
		}
	}

	tbl := stats.NewTable("representation", "vertices", "edges", "mean stretch", "max stretch")
	measure := func(name string, verts, edges int, route func(s, t sim.NodeID) core.Outcome) {
		var stretch []float64
		for _, p := range pairs {
			out := route(p[0], p[1])
			if !out.Reached {
				continue
			}
			if _, opt, ok := nw.G.ShortestPath(p[0], p[1]); ok && opt > 0 {
				stretch = append(stretch, out.Length(nw.LDel)/opt)
			}
		}
		s := stats.Summarize(stretch)
		tbl.AddRow(name, verts, edges, s.Mean, s.Max)
	}

	for _, rep := range []struct {
		name  string
		polys [][]geom.Point
	}{
		{"full boundary (Sec 3)", boundary},
		{"locally convex hull (Def 4.1)", lch},
		{"convex hull (Sec 4)", hull},
	} {
		d := vis.NewDomain(rep.polys)
		measure(rep.name, len(d.Corners()), d.CornerEdges(), func(s, t sim.NodeID) core.Outcome {
			return nw.RouteWithObstacles(s, t, d)
		})
	}
	o := vis.NewOverlay(boundary)
	measure("boundary Delaunay overlay", len(o.Corners()), o.EdgeCount(), func(s, t sim.NodeID) core.Outcome {
		return nw.RouteWithOverlay(s, t, o)
	})

	fmt.Println(tbl)
	fmt.Println("the convex hull keeps a fraction of the vertices and edges while")
	fmt.Println("stretch stays within the paper's constants — the Section 4.1 tradeoff.")
}
