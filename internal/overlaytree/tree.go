// Package overlaytree builds a low-diameter rooted overlay tree over the
// long-range links of the hybrid network. The paper uses the protocol of
// Gmyr, Hinnenthal, Scheideler and Sohler, which connects all nodes into a
// rooted tree of height O(log n) and constant degree in O(log² n)
// communication rounds. As documented in DESIGN.md we substitute a
// Borůvka-style component-merge protocol with the same interface: components
// repeatedly (a) learn the labels of neighbouring components over ad hoc
// links, (b) convergecast the minimum neighbouring label to their root,
// (c) propose a merge to that component over a long-range link, and
// (d) graft accepted proposers, relabelling the merged component. Minimum-
// label targeting contracts entire proposal chains per phase, so the number
// of components drops geometrically: O(log n) phases, each O(tree height)
// rounds. Typical heights stay logarithmic for geometric instances; the
// worst case is not the O(log n) Gmyr guarantees, which the experiments
// report honestly.
//
// The package also provides the tree flooding primitive of Section 5.5: any
// set of nodes injects items, every node forwards towards its parent and
// into its other subtrees, and after O(height) rounds every node holds every
// item (no node receives an item twice along the same edge direction).
package overlaytree

import (
	"fmt"

	"hybridroute/internal/sim"
)

// Tree is the result of Build: a rooted spanning tree over all nodes,
// connected via long-range links.
type Tree struct {
	Root     sim.NodeID
	Parent   []sim.NodeID // Parent[root] == root
	Children [][]sim.NodeID
}

// Height returns the height of the tree (edges on the longest root-leaf path).
func (t *Tree) Height() int {
	var depth func(v sim.NodeID) int
	depth = func(v sim.NodeID) int {
		best := 0
		for _, c := range t.Children[v] {
			if d := depth(c) + 1; d > best {
				best = d
			}
		}
		return best
	}
	return depth(t.Root)
}

// MaxDegree returns the maximum node degree in the tree (children + parent).
func (t *Tree) MaxDegree() int {
	max := 0
	for v := range t.Children {
		d := len(t.Children[v])
		if sim.NodeID(v) != t.Root {
			d++
		}
		if d > max {
			max = d
		}
	}
	return max
}

// Validate checks the tree spans all n nodes and is acyclic.
func (t *Tree) Validate(n int) error {
	if len(t.Parent) != n {
		return fmt.Errorf("overlaytree: %d parents for %d nodes", len(t.Parent), n)
	}
	seen := make([]bool, n)
	count := 0
	stack := []sim.NodeID{t.Root}
	seen[t.Root] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		for _, c := range t.Children[v] {
			if seen[c] {
				return fmt.Errorf("overlaytree: node %d reached twice", c)
			}
			if t.Parent[c] != v {
				return fmt.Errorf("overlaytree: parent/child mismatch at %d", c)
			}
			seen[c] = true
			stack = append(stack, c)
		}
	}
	if count != n {
		return fmt.Errorf("overlaytree: tree spans %d of %d nodes", count, n)
	}
	return nil
}

// --- protocol messages --------------------------------------------------

// labelQ asks a UDG neighbour for its current component label.
type labelQ struct{ phase int }

// labelA answers with the sender's label (the component root's ID).
type labelA struct {
	phase int
	label sim.NodeID
}

func (m labelA) Words() int               { return 2 }
func (m labelA) CarriedIDs() []sim.NodeID { return []sim.NodeID{m.label} }

// report carries the convergecast aggregate towards the root: the minimum
// external component label seen in the subtree.
type report struct {
	phase  int
	hasExt bool
	best   sim.NodeID
}

func (m report) Words() int { return 3 }
func (m report) CarriedIDs() []sim.NodeID {
	if m.hasExt {
		return []sim.NodeID{m.best}
	}
	return nil
}

// propose asks another component's root for a merge. origin is the proposing
// root (the node that will be grafted); a recipient that already has the
// maximum number of children relays the proposal into one of its subtrees,
// which keeps every node's tree degree constant (the property the paper gets
// from the Gmyr et al. construction).
type propose struct {
	label  sim.NodeID
	origin sim.NodeID
}

func (m propose) Words() int               { return 3 }
func (m propose) CarriedIDs() []sim.NodeID { return []sim.NodeID{m.origin} }

// accept grafts the proposer under the acceptor; the proposer's component
// adopts the given label.
type accept struct{ label sim.NodeID }

func (m accept) Words() int               { return 2 }
func (m accept) CarriedIDs() []sim.NodeID { return []sim.NodeID{m.label} }

// reject tells the proposer to retry next phase.
type reject struct{}

// relabel floods a new component label down the tree.
type relabel struct{ label sim.NodeID }

func (m relabel) Words() int               { return 2 }
func (m relabel) CarriedIDs() []sim.NodeID { return []sim.NodeID{m.label} }

// --- node state -----------------------------------------------------------

type nodeState struct {
	self     sim.NodeID
	label    sim.NodeID
	parent   sim.NodeID // == self when this node is a component root
	children []sim.NodeID

	phase       int
	extLabels   map[sim.NodeID]sim.NodeID // UDG neighbour -> its label this phase
	awaitLabels int
	awaitKids   map[sim.NodeID]bool
	bestExt     sim.NodeID
	hasExt      bool
	reported    bool
	proposedTo  sim.NodeID // root this node proposed to this phase, or -1
	pendingProp []propose  // proposals received before the local decision
	relayRR     int        // round-robin index for relayed grafts
}

// maxChildren caps the overlay tree degree; proposals beyond the cap are
// relayed into a subtree, keeping storage per node O(1) (Theorem 1.2).
const maxChildren = 3

func (st *nodeState) isRoot() bool { return st.parent == st.self }
