package expt

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"hybridroute/internal/core"
	"hybridroute/internal/sim"
	"hybridroute/internal/stats"
	"hybridroute/internal/trace"
)

// e19Row is one sweep point of E19: a seeded churn schedule with `crashes`
// crash/recover pairs replayed while a batch of queries is in flight.
type e19Row struct {
	label   string
	crashes int
}

// e19Outcome is everything one E19 row produced: the traced per-query
// reports, the raw event stream and the network the row ran on (for its
// repair statistics and topology generation).
type e19Outcome struct {
	reports []*core.TraceReport
	events  []trace.Event
	nw      *core.Network
}

// e19Run routes the shared query batch on a fresh network with the given
// churn schedule installed (crashes <= 0 leaves the fault model out
// entirely) and the full tracer on, via TraceBatch so every query of the
// batch is traced — not just a sample.
func e19Run(opt Options, n int, pairs [][2]sim.NodeID, schedule sim.ChurnSchedule) (*e19Outcome, error) {
	nw, _, err := preprocessScenario(opt, n)
	if err != nil {
		return nil, err
	}
	tr := trace.New(0)
	nw.SetTracer(tr)
	if len(schedule.Events) > 0 {
		cfg := sim.FaultConfig{Seed: uint64(opt.seed()) + 19, Churn: schedule}
		if err := nw.Sim.SetFaults(cfg); err != nil {
			return nil, err
		}
	}
	queries := make([]core.Query, len(pairs))
	for i, p := range pairs {
		queries[i] = core.Query{S: p[0], T: p[1]}
	}
	reports, err := nw.TraceBatch(queries, core.TransportOptions{PayloadWords: 32})
	if err != nil {
		return nil, err
	}
	return &e19Outcome{reports: reports, events: tr.Events(), nw: nw}, nil
}

// traceReportsEqual compares every observable of two trace reports,
// including the full per-hop detail — the byte-identity check for the
// churn-disabled row.
func traceReportsEqual(a, b *core.TraceReport) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.S != b.S || a.T != b.T || a.Delivered != b.Delivered || a.Rounds != b.Rounds ||
		a.Retransmits != b.Retransmits || a.HopRetrans != b.HopRetrans ||
		a.Replans != b.Replans || a.Nacks != b.Nacks || a.Err != b.Err ||
		a.TraversedLength != b.TraversedLength || a.CompetitiveRatio != b.CompetitiveRatio ||
		a.Verified != b.Verified || a.E2EResends != b.E2EResends ||
		a.VerifyFails != b.VerifyFails || a.MisrouteDetected != b.MisrouteDetected ||
		len(a.Hops) != len(b.Hops) {
		return false
	}
	for i := range a.Hops {
		if a.Hops[i] != b.Hops[i] {
			return false
		}
	}
	return true
}

// e19Silent counts misrouted-plan silent failures: queries the transport
// reports as delivered whose trace shows the payload never actually reached
// the target. Under the reliable protocol that means an acked hop into T;
// under the ack-free lossless transport any launched hop into T counts.
func e19Silent(reports []*core.TraceReport) int {
	silent := 0
	for _, r := range reports {
		if r == nil || !r.Delivered {
			continue
		}
		if r.S == r.T {
			continue // answered locally, no hops by design
		}
		anyAcks := false
		for _, h := range r.Hops {
			if h.Acked {
				anyAcks = true
				break
			}
		}
		reached := false
		for _, h := range r.Hops {
			if h.To == r.T && (h.Acked || !anyAcks) {
				reached = true
				break
			}
		}
		if !reached {
			silent++
		}
	}
	return silent
}

// e19Artifacts writes the sweep summary plus the heaviest row's folded
// metrics and raw membership events as E19_churn.json.
func e19Artifacts(dir string, rowsOut []map[string]interface{}, heavy *e19Outcome) error {
	reg := trace.NewRegistry()
	reg.MergeEvents(heavy.events)
	var membership []trace.Event
	for _, ev := range heavy.events {
		switch ev.Kind {
		case trace.KindCrash, trace.KindRecover, trace.KindSuspect, trace.KindRepair:
			membership = append(membership, ev)
		}
	}
	blob, err := json.MarshalIndent(struct {
		Rows       []map[string]interface{} `json:"rows"`
		Metrics    *trace.Registry          `json:"metrics"`
		Membership []trace.Event            `json:"membership_events"`
	}{rowsOut, reg, membership}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "E19_churn.json"), append(blob, '\n'), 0o644)
}

// E19 measures routing under churn: a seeded schedule crashes and recovers
// nodes while a traced query batch is in flight, exercising the full
// robustness stack — incremental topology repair on every membership change,
// plan-cache invalidation through the topology generation, and suspect-based
// failover for queries already past planning when a crash lands. The sweep
// reports query survival and competitive ratio against the churn intensity.
// The churn-0 row must be byte-identical (per-hop) to a run on a network
// that never had a fault config installed, delivery of deliverable queries
// (endpoints are protected from the schedule) must stay >= 90% on every
// row, and no delivered query may be a misrouted-plan silent failure. With
// Options.TraceDir set, the sweep and the heaviest row's membership events
// are written out as E19_churn.json.
func E19(opt Options) (*Result, error) {
	res := &Result{
		ID:    "E19",
		Title: "Churn: delivery and competitive ratio under crash/recovery",
		Claim: "incremental repair + topology-generation cache invalidation + suspect failover sustain >= 90% delivery of endpoint-safe queries under mid-batch churn, with zero misrouted-plan silent failures; churn 0 is byte-identical to a never-faulted network",
	}
	n, q := 420, 48
	crashCounts := []int{2, 4, 8}
	if opt.Quick {
		n, q = 240, 20
		crashCounts = []int{1, 2, 4}
	}
	if opt.Churn > 0 {
		crashCounts = append(crashCounts, opt.Churn)
	}

	// Learn the node count, then draw the query set all rows share. Every
	// endpoint is protected from the churn schedule so each row answers the
	// same deliverable pairs.
	nw0, _, err := preprocessScenario(opt, n)
	if err != nil {
		return nil, err
	}
	nodes := nw0.G.N()
	rng := rand.New(rand.NewSource(opt.seed() + 19))
	pairs := samplePairs(rng, nodes, q)
	protect := make([]sim.NodeID, 0, 2*len(pairs))
	for _, p := range pairs {
		protect = append(protect, p[0], p[1])
	}

	// Baseline: the batch on a network that never saw a fault config.
	base, err := e19Run(opt, n, pairs, sim.ChurnSchedule{})
	if err != nil {
		return nil, err
	}

	rows := []e19Row{{"churn 0", 0}}
	for _, c := range crashCounts {
		rows = append(rows, e19Row{fmt.Sprintf("churn %d×(crash+recover)", c), c})
	}
	res.Table = stats.NewTable("churn", "delivered", "rate", "mean ratio", "mean rounds", "crashes", "repairs", "suspects", "replans")

	// Horizon spreads the crashes across the batch; the dwell keeps each
	// victim down long enough for repair and failover to matter but short
	// enough that every recovery (and restore repair) also lands in-run.
	horizon, dwell := q*10, 30

	churnOK, identical := true, true
	silentTotal := 0
	var heavy *e19Outcome
	var rowsOut []map[string]interface{}
	for _, row := range rows {
		var out *e19Outcome
		if row.crashes == 0 {
			// Reuse the baseline run as the churn-0 row: installing a zero-
			// event schedule is defined to leave the fault model out, so the
			// row *is* the never-faulted configuration.
			out = base
		} else {
			schedule := sim.GenerateChurn(uint64(opt.seed())+19, nodes, horizon, row.crashes, dwell, protect)
			out, err = e19Run(opt, n, pairs, schedule)
			if err != nil {
				return nil, err
			}
			heavy = out
		}

		delivered, replans := 0, 0
		var ratioSum, roundSum float64
		ratioN := 0
		for _, r := range out.reports {
			if r == nil || !r.Delivered {
				continue
			}
			delivered++
			replans += r.Replans
			roundSum += float64(r.Rounds)
			if r.CompetitiveRatio > 0 {
				ratioSum += r.CompetitiveRatio
				ratioN++
			}
		}
		crashes, repairs, suspects := 0, 0, 0
		for _, ev := range out.events {
			switch ev.Kind {
			case trace.KindCrash:
				crashes++
			case trace.KindRepair:
				repairs++
			case trace.KindSuspect:
				suspects++
			}
		}
		rate := float64(delivered) / float64(len(pairs))
		res.Table.AddRow(row.label, fmt.Sprintf("%d/%d", delivered, len(pairs)),
			fmt.Sprintf("%.3f", rate),
			fmt.Sprintf("%.3f", ratioSum/float64(max(ratioN, 1))),
			fmt.Sprintf("%.1f", roundSum/float64(max(delivered, 1))),
			crashes, repairs, suspects, replans)
		rowsOut = append(rowsOut, map[string]interface{}{
			"churn": row.crashes, "delivered": delivered, "queries": len(pairs),
			"rate": rate, "mean_ratio": ratioSum / float64(max(ratioN, 1)),
			"crashes": crashes, "repairs": repairs, "suspects": suspects, "replans": replans,
		})

		silentTotal += e19Silent(out.reports)
		if rate < 0.9 {
			churnOK = false
		}
		if row.crashes == 0 {
			for i := range out.reports {
				if !traceReportsEqual(base.reports[i], out.reports[i]) {
					identical = false
					break
				}
			}
		}
	}

	// The heaviest row must have genuinely exercised the stack: schedule
	// events fired, the topology generation moved, and repairs ran.
	exercised := heavy != nil && heavy.nw.TopoGeneration() > 0 && heavy.nw.RepairReport().Repairs > 0
	rep := core.RepairStats{}
	if heavy != nil {
		rep = heavy.nw.RepairReport()
	}

	res.note("churn-0 row byte-identical (per-hop) to a never-faulted network: %v", identical)
	res.note("misrouted-plan silent failures across all rows: %d", silentTotal)
	res.note("heaviest row: topology generation %d; repairs %d (%d incremental, %d full, %d restores, %d hole recomputations reused)",
		func() uint64 {
			if heavy == nil {
				return 0
			}
			return heavy.nw.TopoGeneration()
		}(), rep.Repairs, rep.Incremental, rep.Full, rep.Restores, rep.HolesReused)
	res.Pass = identical && churnOK && silentTotal == 0 && exercised

	if opt.TraceDir != "" && heavy != nil {
		if err := e19Artifacts(opt.TraceDir, rowsOut, heavy); err != nil {
			return nil, fmt.Errorf("e19: artifacts: %w", err)
		}
		res.note("churn artifacts written to %s", opt.TraceDir)
	}
	return res, nil
}
