// The batch-routing engine: after the one-time preprocessing of Section 5,
// every structure a query touches (LDel², router faces, hulls, bays, overlay
// graphs, visibility domains) is read-only, so a node can answer many
// queries from stored state — the serving model the paper's abstraction
// exists to amortize. Engine exploits that: it answers query batches on a
// worker pool over one shared Network and keeps the expensive reusable
// sub-results of plan construction (per-group geodesics, hull exit plans,
// overlay waypoint paths) in a bounded, sharded LRU cache so repeated and
// clustered queries skip recomputation.

package core

import (
	"container/list"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"hybridroute/internal/geom"
	"hybridroute/internal/mem"
	"hybridroute/internal/sim"
	"hybridroute/internal/trace"
)

// Query is one routing request for the batch engine.
type Query struct {
	S, T sim.NodeID
}

// EngineConfig tunes the batch engine.
type EngineConfig struct {
	// Workers is the routing worker pool size; <= 0 means GOMAXPROCS.
	Workers int
	// CacheSize bounds the total number of cached plan entries across all
	// shards; 0 means the default (4096), negative disables caching (the
	// pool still routes concurrently).
	CacheSize int
	// Shards is the number of cache shards (each with its own lock); <= 0
	// means the default (16). More shards reduce lock contention.
	Shards int
}

// CacheStats reports plan-cache effectiveness.
type CacheStats struct {
	Hits, Misses, Evictions uint64
	Entries                 int
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Engine answers routing queries over a preprocessed Network concurrently.
// The Network (and everything reachable from it on the query path) is
// treated as shared read-only state; the engine's only mutable state is the
// sharded plan cache. An Engine is safe for concurrent use and multiple
// engines may share one Network.
type Engine struct {
	nw      *Network
	workers int
	shards  []cacheShard
	// scratch pools per-worker arenas for copying cached outcomes on the warm
	// path without per-call heap allocation.
	scratch sync.Pool
	// tracer is the installed event recorder (nil: tracing disabled). The
	// engine emits cache hit/miss/evict events per plan-fragment lookup and
	// worker-queue depth events while draining a batch.
	tracer *trace.Tracer
	// inflight counts Route calls currently executing, across every caller
	// (batch workers and direct Route calls alike). It is the engine's
	// contribution to the queue-depth signal: outstanding work is what is
	// still unclaimed plus what is in flight, and a serving layer polls it to
	// know when the engine has quiesced during a drain.
	inflight atomic.Int64
}

// routeScratch is the pooled per-call working memory of a warm-cache Route.
type routeScratch struct {
	ids *mem.Arena[sim.NodeID]
}

// NewEngine builds a batch engine over a preprocessed network.
func NewEngine(nw *Network, cfg EngineConfig) *Engine {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	size := cfg.CacheSize
	if size == 0 {
		size = 4096
	}
	e := &Engine{nw: nw, workers: workers}
	e.scratch.New = func() interface{} {
		return &routeScratch{ids: mem.NewArena[sim.NodeID](0)}
	}
	if size > 0 {
		shards := cfg.Shards
		if shards <= 0 {
			shards = 16
		}
		if shards > size {
			shards = size
		}
		per := (size + shards - 1) / shards
		e.shards = make([]cacheShard, shards)
		for i := range e.shards {
			e.shards[i].cap = per
			e.shards[i].entries = make(map[planKey]*list.Element, per)
			e.shards[i].order = list.New()
		}
	}
	return e
}

// Network returns the shared preprocessed network.
func (e *Engine) Network() *Network { return e.nw }

// Workers returns the effective worker pool size.
func (e *Engine) Workers() int { return e.workers }

// InFlight returns the number of Route calls currently executing. A serving
// layer reads it as a live load signal and to confirm the engine has
// quiesced while draining.
func (e *Engine) InFlight() int { return int(e.inflight.Load()) }

// SetTracer installs (nil: removes) the event recorder for the engine's own
// events (cache effectiveness, worker-queue depth). It does not touch the
// shared Network's tracer — call Network().SetTracer for transport and
// simulator events. Tracing never changes outcomes or cache behaviour.
func (e *Engine) SetTracer(tr *trace.Tracer) { e.tracer = tr }

// label names the cached planner in trace events.
func (e *Engine) label() string { return "engine" }

// Route answers a single query through the plan cache. The outcome is
// identical to Network.Route on the same pair. A repeated query is served
// from the whole-outcome cache: the cached Outcome is copied out through a
// pooled arena, so the warm path performs zero per-call heap allocations
// while the caller still receives private Path/Waypoints slices.
func (e *Engine) Route(s, t sim.NodeID) Outcome {
	e.inflight.Add(1)
	defer e.inflight.Add(-1)
	k := planKey{kind: kindOutcome, abs: e.absID(), a: s, b: t, gen: e.linkGen(), topo: e.topoGen(), rep: e.repGen()}
	if v, hit := e.lookup(k); hit {
		sc := e.scratch.Get().(*routeScratch)
		out := *v.out
		out.Path = sc.ids.Copy(v.out.Path)
		out.Waypoints = sc.ids.Copy(v.out.Waypoints)
		e.scratch.Put(sc)
		return out
	}
	out := e.nw.route(e, s, t, false)
	stored := out
	stored.Path = copyIDs(out.Path)
	stored.Waypoints = copyIDs(out.Waypoints)
	e.store(k, planValue{out: &stored})
	return out
}

// RouteBatch answers all queries on the worker pool, preserving input order
// in the result slice. Outcomes are identical to routing each query
// sequentially via Network.Route.
func (e *Engine) RouteBatch(queries []Query) []Outcome {
	out := make([]Outcome, len(queries))
	workers := e.workers
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers <= 1 {
		for i, q := range queries {
			out[i] = e.Route(q.S, q.T)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				out[i] = e.Route(queries[i].S, queries[i].T)
				if e.tracer != nil {
					// Outstanding work after this completion: queries no
					// worker has claimed yet plus claims still in flight.
					// The old claim-time `len(queries) - i` always peaked at
					// the full batch size (the first claim sees everything),
					// so the max gauge said nothing about actual depth.
					// Reading inflight before the claim counter keeps the
					// sum a true point-in-time bound: this worker's query is
					// already done, so the value is at most len(queries)-1.
					inf := int(e.inflight.Load())
					claimed := int(next.Load())
					if claimed > len(queries) {
						claimed = len(queries)
					}
					e.tracer.Emit(trace.Event{Kind: trace.KindQueueDepth, Value: len(queries) - claimed + inf})
				}
			}
		}()
	}
	wg.Wait()
	return out
}

// Stats sums cache counters across shards.
func (e *Engine) Stats() CacheStats {
	var st CacheStats
	for i := range e.shards {
		s := &e.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Evictions += s.evictions
		st.Entries += s.order.Len()
		s.mu.Unlock()
	}
	return st
}

// --- planSource implementation: cache-through to the Network ---

var _ planSource = (*Engine)(nil)

const (
	kindGroupPath = iota
	kindExitPlan
	kindOverlay
	kindOutcome // whole routing outcome for a (s, t) pair
)

// planKey identifies one cacheable sub-result. Exit plans additionally
// depend on the continuous "toward" point, carried as raw coordinates.
// gen is the LinkStats generation the fragment was computed under: when
// link-quality estimates shift, the generation advances and stale cached
// fragments simply stop being addressable (they age out of the LRU). On a
// lossless run the generation stays 0 forever, so caching is unchanged.
// topo is the Network's topology-repair generation: a membership change
// (crash or recovery) advances it, so every fragment planned over the old
// topology dies with the change instead of misrouting traffic into a dead
// node — same invalidation-by-unaddressability scheme, same zero cost while
// the membership is static. abs is the hole abstraction backend ID: plan
// fragments computed under one abstraction are never served to another
// (a repair can swap the Abstraction instance, and engines may share a
// Network whose backend differs from what a stale key assumed).
// rep is the reputation generation: verified-delivery scores shifting make
// reputation-weighted fragments stale the same way link estimates do. It
// stays 0 whenever the table is absent or untouched (every clean run).
type planKey struct {
	kind int8
	abs  uint8
	gi   int32
	a, b sim.NodeID
	x, y float64
	gen  uint64
	topo uint64
	rep  uint64
}

// linkGen is the current link-quality generation to stamp into plan keys.
func (e *Engine) linkGen() uint64 {
	if e.nw.Link == nil {
		return 0
	}
	return e.nw.Link.Generation()
}

// topoGen is the current topology-repair generation to stamp into plan keys.
func (e *Engine) topoGen() uint64 { return e.nw.TopoGeneration() }

// repGen is the current reputation generation to stamp into plan keys.
func (e *Engine) repGen() uint64 { return e.nw.Rep.Generation() }

// absID is the hole abstraction backend identifier to stamp into plan keys.
func (e *Engine) absID() uint8 { return e.nw.Abs.ID() }

// planValue is a cached plan fragment. Failures (ok=false) are cached too:
// a pair that falls back once will fall back every time. Whole-outcome
// entries (kindOutcome) carry the Outcome instead; its Path/Waypoints are
// private deep copies, never handed out directly.
type planValue struct {
	wps  []sim.NodeID
	exit sim.NodeID
	ok   bool
	out  *Outcome
}

func (e *Engine) groupPathNodes(gi int, s, t sim.NodeID) ([]sim.NodeID, bool) {
	k := planKey{kind: kindGroupPath, abs: e.absID(), gi: int32(gi), a: s, b: t, gen: e.linkGen(), topo: e.topoGen(), rep: e.repGen()}
	if v, hit := e.lookup(k); hit {
		return copyIDs(v.wps), v.ok
	}
	wps, ok := e.nw.groupPathNodes(gi, s, t)
	e.store(k, planValue{wps: copyIDs(wps), ok: ok})
	return wps, ok
}

func (e *Engine) exitPlan(gi int, v sim.NodeID, toward geom.Point) ([]sim.NodeID, sim.NodeID, bool) {
	k := planKey{kind: kindExitPlan, abs: e.absID(), gi: int32(gi), a: v, x: toward.X, y: toward.Y, gen: e.linkGen(), topo: e.topoGen(), rep: e.repGen()}
	if c, hit := e.lookup(k); hit {
		return copyIDs(c.wps), c.exit, c.ok
	}
	wps, exit, ok := e.nw.exitPlan(gi, v, toward)
	e.store(k, planValue{wps: copyIDs(wps), exit: exit, ok: ok})
	return wps, exit, ok
}

func (e *Engine) overlayWaypoints(a, b sim.NodeID) ([]sim.NodeID, bool) {
	k := planKey{kind: kindOverlay, abs: e.absID(), a: a, b: b, gen: e.linkGen(), topo: e.topoGen(), rep: e.repGen()}
	if v, hit := e.lookup(k); hit {
		return copyIDs(v.wps), v.ok
	}
	wps, ok := e.nw.overlayWaypoints(a, b)
	e.store(k, planValue{wps: copyIDs(wps), ok: ok})
	return wps, ok
}

func (e *Engine) lookup(k planKey) (planValue, bool) {
	if len(e.shards) == 0 {
		return planValue{}, false
	}
	v, hit := e.shards[shardOf(k, len(e.shards))].get(k)
	if e.tracer != nil {
		kind := trace.KindCacheMiss
		if hit {
			kind = trace.KindCacheHit
		}
		e.tracer.Emit(trace.Event{Kind: kind, From: int(k.a), To: int(k.b)})
	}
	return v, hit
}

func (e *Engine) store(k planKey, v planValue) {
	if len(e.shards) == 0 {
		return
	}
	evicted := e.shards[shardOf(k, len(e.shards))].put(k, v)
	if e.tracer != nil && evicted > 0 {
		e.tracer.Emit(trace.Event{Kind: trace.KindCacheEvict, Value: evicted})
	}
}

// copyIDs returns a defensive copy: cached slices must never share backing
// arrays with values handed to route(), which appends to plan fragments.
func copyIDs(ids []sim.NodeID) []sim.NodeID {
	if ids == nil {
		return nil
	}
	return append(make([]sim.NodeID, 0, len(ids)), ids...)
}

// shardOf mixes the key fields FNV-1a style into a shard index. Written
// closure-free so the warm routing path stays allocation-free.
func shardOf(k planKey, shards int) int {
	h := uint64(14695981039346656037)
	h = fnvMix(h, uint64(k.kind))
	h = fnvMix(h, uint64(k.abs))
	h = fnvMix(h, uint64(uint32(k.gi)))
	h = fnvMix(h, uint64(k.a))
	h = fnvMix(h, uint64(k.b))
	h = fnvMix(h, math.Float64bits(k.x))
	h = fnvMix(h, math.Float64bits(k.y))
	h = fnvMix(h, k.gen)
	h = fnvMix(h, k.topo)
	h = fnvMix(h, k.rep)
	return int(h % uint64(shards))
}

func fnvMix(h, x uint64) uint64 { return (h ^ x) * 1099511628211 }

// cacheShard is one lock-striped LRU segment: map for lookup, list for
// recency order (front = most recent).
type cacheShard struct {
	mu                      sync.Mutex
	cap                     int
	entries                 map[planKey]*list.Element
	order                   *list.List
	hits, misses, evictions uint64
}

type cacheItem struct {
	key planKey
	val planValue
}

func (s *cacheShard) get(k planKey) (planValue, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[k]
	if !ok {
		s.misses++
		return planValue{}, false
	}
	s.hits++
	s.order.MoveToFront(el)
	return el.Value.(*cacheItem).val, true
}

// put stores a value and returns how many entries the LRU evicted to make
// room (so the caller can trace evictions without re-locking).
func (s *cacheShard) put(k planKey, v planValue) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[k]; ok {
		el.Value.(*cacheItem).val = v
		s.order.MoveToFront(el)
		return 0
	}
	evicted := 0
	for s.order.Len() >= s.cap {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.entries, oldest.Value.(*cacheItem).key)
		s.evictions++
		evicted++
	}
	s.entries[k] = s.order.PushFront(&cacheItem{key: k, val: v})
	return evicted
}
