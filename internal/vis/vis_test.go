package vis

import (
	"math"
	"math/rand"
	"testing"

	"hybridroute/internal/geom"
)

func square(cx, cy, half float64) []geom.Point {
	return []geom.Point{
		geom.Pt(cx-half, cy-half), geom.Pt(cx+half, cy-half),
		geom.Pt(cx+half, cy+half), geom.Pt(cx-half, cy+half),
	}
}

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestVisibleAroundSquare(t *testing.T) {
	d := NewDomain([][]geom.Point{square(5, 5, 1)})
	if d.Visible(geom.Pt(0, 5), geom.Pt(10, 5)) {
		t.Error("segment through the square must be blocked")
	}
	if !d.Visible(geom.Pt(0, 0), geom.Pt(10, 0)) {
		t.Error("segment below the square is visible")
	}
	if !d.Visible(geom.Pt(4, 4), geom.Pt(6, 4)) {
		t.Error("segment along the bottom edge is visible")
	}
	if !d.Visible(geom.Pt(0, 0), geom.Pt(4, 4)) {
		t.Error("segment ending at a corner is visible")
	}
}

func TestShortestPathDirect(t *testing.T) {
	d := NewDomain([][]geom.Point{square(5, 5, 1)})
	path, dist, ok := d.ShortestPath(geom.Pt(0, 0), geom.Pt(10, 0))
	if !ok || len(path) != 2 || !almostEq(dist, 10, 1e-12) {
		t.Fatalf("direct path: %v %v %v", path, dist, ok)
	}
}

func TestShortestPathAroundSquare(t *testing.T) {
	d := NewDomain([][]geom.Point{square(5, 5, 1)})
	s, tt := geom.Pt(0, 5), geom.Pt(10, 5)
	path, dist, ok := d.ShortestPath(s, tt)
	if !ok {
		t.Fatal("path must exist")
	}
	// Optimal: to a corner (4,4), along to (6,4), then to target (or the
	// symmetric top route): 2*sqrt(17) + 2.
	want := 2*math.Sqrt(17) + 2
	if !almostEq(dist, want, 1e-9) {
		t.Fatalf("dist = %v, want %v (path %v)", dist, want, path)
	}
	if len(path) != 4 {
		t.Fatalf("path = %v", path)
	}
	// Interior vertices must be obstacle corners (Lemma 2.12).
	for _, p := range path[1 : len(path)-1] {
		found := false
		for _, c := range d.Corners() {
			if c.Eq(p) {
				found = true
			}
		}
		if !found {
			t.Fatalf("interior path vertex %v is not an obstacle corner", p)
		}
	}
}

func TestShortestPathTwoObstacles(t *testing.T) {
	d := NewDomain([][]geom.Point{square(3, 5, 1), square(7, 5, 1)})
	s, tt := geom.Pt(0, 5), geom.Pt(10, 5)
	path, dist, ok := d.ShortestPath(s, tt)
	if !ok {
		t.Fatal("path must exist")
	}
	if dist <= 10 {
		t.Fatalf("distance %v must exceed the blocked straight line", dist)
	}
	if got := geom.PathLength(path); !almostEq(got, dist, 1e-9) {
		t.Fatalf("path length %v != reported %v", got, dist)
	}
}

func TestShortestPathInsideObstacleFails(t *testing.T) {
	d := NewDomain([][]geom.Point{square(5, 5, 1)})
	if _, _, ok := d.ShortestPath(geom.Pt(5, 5), geom.Pt(0, 0)); ok {
		t.Error("source strictly inside an obstacle")
	}
	if _, _, ok := d.ShortestPath(geom.Pt(0, 0), geom.Pt(5, 5)); ok {
		t.Error("target strictly inside an obstacle")
	}
}

func TestDomainNoObstacles(t *testing.T) {
	d := NewDomain(nil)
	path, dist, ok := d.ShortestPath(geom.Pt(1, 2), geom.Pt(4, 6))
	if !ok || len(path) != 2 || !almostEq(dist, 5, 1e-12) {
		t.Fatalf("%v %v %v", path, dist, ok)
	}
	if d.CornerEdges() != 0 {
		t.Error("no corners, no edges")
	}
}

func TestOverlayEdgeCountLinear(t *testing.T) {
	// Many hulls: overlay (planar) edges must be O(corners), far below the
	// Θ(h²) of the visibility graph. This is the space reduction of §4.1.
	var hulls [][]geom.Point
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			hulls = append(hulls, square(float64(i)*10, float64(j)*10, 1))
		}
	}
	o := NewOverlay(hulls)
	corners := len(o.Corners())
	if o.EdgeCount() > 3*corners {
		t.Errorf("overlay edges %d exceed planar bound %d", o.EdgeCount(), 3*corners)
	}
	d := NewDomain(hulls)
	if d.CornerEdges() <= o.EdgeCount() {
		t.Errorf("visibility graph (%d) should be denser than overlay (%d)",
			d.CornerEdges(), o.EdgeCount())
	}
}

func TestOverlayNoEdgeThroughHull(t *testing.T) {
	hulls := [][]geom.Point{square(5, 5, 2)}
	o := NewOverlay(hulls)
	for _, e := range o.Edges() {
		a, b := o.Corners()[e[0]], o.Corners()[e[1]]
		mid := geom.Midpoint(a, b)
		if geom.PointStrictlyInSimple(mid, hulls[0]) {
			t.Fatalf("overlay edge %v-%v cuts through the hull", a, b)
		}
	}
	// The 4 boundary edges must be present; the 2 diagonals must not.
	if o.EdgeCount() != 4 {
		t.Fatalf("single square overlay has %d edges, want 4", o.EdgeCount())
	}
}

func TestOverlayShortestPathCompetitive(t *testing.T) {
	// Overlay path can be at most 1.998× the true geometric shortest path
	// (Delaunay spanning ratio; Theorem 4.8(1) without the routing factor).
	rng := rand.New(rand.NewSource(12))
	var hulls [][]geom.Point
	centers := []geom.Point{geom.Pt(4, 4), geom.Pt(10, 7), geom.Pt(6, 11), geom.Pt(13, 3)}
	for _, c := range centers {
		hulls = append(hulls, square(c.X, c.Y, 1.2))
	}
	o := NewOverlay(hulls)
	d := NewDomain(hulls)
	for trial := 0; trial < 200; trial++ {
		s := geom.Pt(rng.Float64()*16, rng.Float64()*14)
		tt := geom.Pt(rng.Float64()*16, rng.Float64()*14)
		if o.PointInObstacle(s) || o.PointInObstacle(tt) {
			continue
		}
		op, od, ok1 := o.ShortestPath(s, tt)
		vp, vd, ok2 := d.ShortestPath(s, tt)
		if !ok1 || !ok2 {
			t.Fatalf("paths must exist: %v %v", ok1, ok2)
		}
		if od < vd-1e-9 {
			t.Fatalf("overlay dist %v below visibility dist %v", od, vd)
		}
		if od > 1.998*vd+1e-9 {
			t.Fatalf("overlay stretch %v exceeds 1.998 (s=%v t=%v, op=%v vp=%v)",
				od/vd, s, tt, op, vp)
		}
	}
}

func TestOverlayVisiblePairDirect(t *testing.T) {
	o := NewOverlay([][]geom.Point{square(5, 5, 1)})
	path, dist, ok := o.ShortestPath(geom.Pt(0, 0), geom.Pt(10, 0))
	if !ok || len(path) != 2 || !almostEq(dist, 10, 1e-12) {
		t.Fatalf("%v %v %v", path, dist, ok)
	}
}

func TestOverlayEmptyHulls(t *testing.T) {
	o := NewOverlay(nil)
	_, dist, ok := o.ShortestPath(geom.Pt(0, 0), geom.Pt(3, 4))
	if !ok || !almostEq(dist, 5, 1e-12) {
		t.Fatal("free plane must route directly")
	}
}

func BenchmarkVisibilityDomain100Corners(b *testing.B) {
	var hulls [][]geom.Point
	for i := 0; i < 25; i++ {
		hulls = append(hulls, square(float64(i%5)*10, float64(i/5)*10, 1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewDomain(hulls)
	}
}

func BenchmarkOverlayQuery(b *testing.B) {
	var hulls [][]geom.Point
	for i := 0; i < 25; i++ {
		hulls = append(hulls, square(2+float64(i%5)*10, 2+float64(i/5)*10, 1))
	}
	o := NewOverlay(hulls)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.ShortestPath(geom.Pt(0, 0), geom.Pt(44, 44))
	}
}

func TestAdjacentBoundaryVerticesVisible(t *testing.T) {
	// Regression: computed midpoints of boundary edges land within machine
	// epsilon of the segment; the strict-interior test must not classify
	// them as inside, or adjacent polygon vertices stop seeing each other
	// and the visibility graph shatters.
	poly := []geom.Point{
		geom.Pt(0.0001, 0), geom.Pt(1, 0.0002), geom.Pt(2, -0.0001), geom.Pt(3, 0),
		geom.Pt(3, 3), geom.Pt(0, 3),
	}
	d := NewDomain([][]geom.Point{poly})
	n := len(poly)
	for i := 0; i < n; i++ {
		a, b := poly[i], poly[(i+1)%n]
		if !d.Visible(a, b) {
			t.Fatalf("adjacent boundary vertices %v and %v must be visible", a, b)
		}
	}
	// The corner visibility graph of a single simple polygon is connected.
	if d.CornerEdges() < n {
		t.Fatalf("corner graph too sparse: %d edges for %d corners", d.CornerEdges(), n)
	}
}
