// Command netviz reproduces the paper's Figure 1: it renders the pipeline —
// (1) the ad hoc network with its radio holes, (2) the convex-hull
// abstraction with bay areas shaded, (3) a c-competitive route following
// hull-node waypoints — as three SVG files.
//
// Usage:
//
//	netviz [-out dir] [-seed 1] [-scenario uniform|city]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"hybridroute/internal/core"
	"hybridroute/internal/geom"
	"hybridroute/internal/sim"
	"hybridroute/internal/viz"
	"hybridroute/internal/workload"
)

func main() {
	out := flag.String("out", ".", "output directory for SVG files")
	seed := flag.Int64("seed", 1, "random seed")
	scenario := flag.String("scenario", "uniform", "scenario: uniform or city")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatalf("output dir: %v", err)
	}

	var sc *workload.Scenario
	var err error
	switch *scenario {
	case "city":
		sc, err = workload.CityGrid(*seed, 2, 2, 3.2, 3.2, 2.4, 1, 5.5)
	default:
		obstacles := workload.RandomConvexObstacles(*seed, 3, 11, 11, 1.3, 1.9, 1.4)
		sc, err = workload.WithObstacles(*seed, 520, 11, 11, 1, obstacles)
	}
	if err != nil {
		log.Fatalf("scenario: %v", err)
	}
	g := sc.Build()
	nw, err := core.Preprocess(g, core.Config{Strict: true, Seed: uint64(*seed)})
	if err != nil {
		log.Fatalf("preprocess: %v", err)
	}

	base := viz.Scene{
		Points: g.Points(),
		Edges:  nw.LDel.Edges(),
	}

	// Stage 1: hole detection.
	s1 := base
	for _, h := range nw.Holes.Holes {
		if !h.Outer {
			s1.Holes = append(s1.Holes, h.Polygon)
		}
	}
	s1.Title = "(1) radio hole detection on LDel²(V)"

	// Stage 2: hull abstraction + bay areas.
	s2 := s1
	for _, h := range nw.Holes.Holes {
		if len(h.Hull) >= 3 {
			s2.Hulls = append(s2.Hulls, h.Hull)
		}
	}
	for _, b := range nw.Bays {
		s2.Bays = append(s2.Bays, b.Polygon)
	}
	s2.Title = "(2) convex hull abstraction with bay areas"

	// Stage 3: a route around the holes.
	rng := rand.New(rand.NewSource(*seed + 5))
	s3 := s2
	for tries := 0; tries < 400; tries++ {
		a := sim.NodeID(rng.Intn(g.N()))
		b := sim.NodeID(rng.Intn(g.N()))
		if a == b {
			continue
		}
		outc := nw.Route(a, b)
		if !outc.Reached || len(outc.Waypoints) < 3 {
			continue // keep looking for a route that actually detours
		}
		var route []geom.Point
		for _, v := range outc.Path {
			route = append(route, g.Point(v))
		}
		var wps []geom.Point
		for _, v := range outc.Waypoints {
			wps = append(wps, g.Point(v))
		}
		seg := geom.Seg(g.Point(a), g.Point(b))
		s3.Route = route
		s3.Waypoints = wps
		s3.Segment = &seg
		break
	}
	s3.Title = "(3) c-competitive route via hull-node waypoints"

	for i, scn := range []viz.Scene{s1, s2, s3} {
		name := filepath.Join(*out, fmt.Sprintf("figure1-stage%d.svg", i+1))
		if err := os.WriteFile(name, []byte(viz.Render(scn, 900)), 0o644); err != nil {
			log.Fatalf("write %s: %v", name, err)
		}
		fmt.Println("wrote", name)
	}
}
