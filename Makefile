# Tier-1 verification (referenced from ROADMAP.md): vet + build + full test
# suite + a race-detector pass over the packages with concurrent query paths.
.PHONY: tier1 vet build test race bench bench-scale bench-serve ci

tier1: vet build test race

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

# The batch engine serves queries from many goroutines over one shared
# Network, the simulator's fault injection must stay deterministic under
# parallel stepping, the tracer takes concurrent emits from the worker
# pool, churn repair patches the shared triangulation between engine
# batches, the hole abstraction backends are read concurrently by every
# routing worker, the mem arenas/mark sets back the router's pooled
# corridor scratch, the serve layer mixes live churn repair with
# in-flight queries and concurrent scrapes, and the cluster gateway
# races hedged attempts against breaker state while chaos kills
# backends under it; keep all nine packages race-clean.
race:
	go test -race ./internal/abstraction/... ./internal/cluster/... ./internal/core/... ./internal/delaunay/... ./internal/mem/... ./internal/routing/... ./internal/serve/... ./internal/sim/... ./internal/trace/...

# Benchmarks stream through cmd/benchjson, which passes the benchstat-friendly
# text through unchanged and archives a JSON summary for CI artifacts. -merge
# folds the new rows into an existing BENCH_results.json (first run: no-op),
# so the scale series below and the quick series land in one document.
bench:
	go test -bench=. -benchmem -run '^$$' | go run ./cmd/benchjson -merge -o BENCH_results.json

# Scale benchmark series (n = 10^4, 10^5, 10^6): static build time, bytes per
# node and warm/cold query throughput. -benchtime=1x — one build per size is
# the measurement. The 10^6 leg needs ~8 GB RSS and several minutes.
bench-scale:
	HYBRIDROUTE_SCALE=1 go test -bench='BenchmarkScale' -benchmem -benchtime=1x -timeout 60m -run '^$$' | go run ./cmd/benchjson -merge -o BENCH_results.json

# Sustained serve-mode throughput: open-loop arrivals at three offered rates
# against the long-running server, reporting p50/p99 serving latency, achieved
# qps and the admission shed rate. -benchtime=1x — one multi-second window per
# rate is the measurement.
bench-serve:
	go test -bench='BenchmarkServeSustained' -benchtime=1x -timeout 20m -run '^$$' | go run ./cmd/benchjson -merge -o BENCH_results.json

ci: tier1 bench
