package overlaytree

import "hybridroute/internal/sim"

// Synthetic returns a balanced binary tree over n nodes without running the
// distributed construction: Parent[i] = (i-1)/2, rooted at 0. The static
// (simulator-free) preprocessing path uses it — the routing query path never
// reads the tree, only the storage accounting does, and a balanced O(log n)
// height tree matches the asymptotics the distributed build guarantees. The
// children rows share one backing array so a million-node tree costs O(1)
// allocations.
func Synthetic(n int) *Tree {
	t := &Tree{Parent: make([]sim.NodeID, n), Children: make([][]sim.NodeID, n)}
	if n == 0 {
		return t
	}
	t.Root = 0
	t.Parent[0] = 0
	if n > 1 {
		backing := make([]sim.NodeID, n-1)
		for i := 1; i < n; i++ {
			t.Parent[i] = sim.NodeID((i - 1) / 2)
			backing[i-1] = sim.NodeID(i)
		}
		// backing[i-1] = i, so node v's children occupy the contiguous range
		// [2v+1, 2v+2] ∩ [1, n-1] of the backing array.
		for v := 0; v < n; v++ {
			lo := 2*v + 1
			hi := 2*v + 2
			if lo >= n {
				continue
			}
			if hi >= n {
				hi = n - 1
			}
			t.Children[v] = backing[lo-1 : hi]
		}
	}
	return t
}
