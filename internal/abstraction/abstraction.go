// Package abstraction defines the pluggable hole abstraction behind the
// routing pipeline: how a set of detected radio holes is condensed into
// disjoint convex regions, how messages test and avoid those regions, and
// what each node must store for it.
//
// Two backends implement the contract:
//
//   - "hull" (the default) is the paper's convex-hull abstraction: every
//     hole contributes its convex hull, mutually intersecting hulls are
//     merged into hull groups, and waypoint plans run over the Overlay
//     Delaunay Graph of all hull corners (Section 4). Its routing output is
//     byte-identical to the pre-abstraction implementation (pinned by test).
//
//   - "bbox" is the bounding-box overlay of Castenow–Kolb–Scheideler ("A
//     Bounding Box Overlay for Competitive Routing in Hybrid Communication
//     Networks"): every hole contributes the axis-aligned bounding box of
//     its hull, overlapping boxes are merged to a fixpoint of disjointness,
//     and waypoint plans run over the box-corner overlay. Because merging is
//     closed-box overlap, it stays well-defined — and competitive — when
//     hole hulls intersect or nest, exactly where the hull abstraction's
//     disjointness assumption fails; per-hole storage drops to O(1) words.
package abstraction

import (
	"fmt"

	"hybridroute/internal/delaunay"
	"hybridroute/internal/geom"
	"hybridroute/internal/udg"
	"hybridroute/internal/vis"
)

// Region is one merged obstacle of the abstraction: the maximal set of holes
// whose abstracted shapes overlap, condensed into a single convex region.
type Region struct {
	Holes []int        // indices into the HoleSet's Holes
	Poly  []geom.Point // convex region polygon, CCW
}

// Abstraction is the pluggable hole pipeline: region geometry, crossing
// tests, waypoint planning and storage accounting. Implementations are
// immutable after construction and safe for concurrent use.
type Abstraction interface {
	// Name is the backend's registry name ("hull", "bbox").
	Name() string
	// ID is a stable one-byte backend identifier, mixed into plan-cache keys
	// so fragments planned under one abstraction are never served to another.
	ID() uint8
	// Regions returns the disjoint merged obstacle regions in deterministic
	// order (by smallest member hole index).
	Regions() []Region
	// RegionAt returns the index of the region strictly containing p, or -1.
	RegionAt(p geom.Point) int
	// Contains reports whether p lies inside or on the boundary of a region.
	Contains(p geom.Point) bool
	// SegmentCrosses reports whether the segment passes through a region.
	SegmentCrosses(s geom.Segment) bool
	// Waypoints returns a region-avoiding waypoint path from a to b with its
	// length. A backend may reject endpoints it cannot plan for (ok=false;
	// the router then exits the region first or falls back) — but a backend
	// whose regions strictly contain hole-boundary nodes (bbox) must accept
	// interior endpoints, since every post-hole-hit plan starts at one.
	Waypoints(a, b geom.Point) ([]geom.Point, float64, bool)
	// CornerNode resolves a region corner point to the network node that
	// realizes it: the hull node itself for the hull backend, the nearest
	// hole-boundary node for synthetic corners (box corners).
	CornerNode(p geom.Point) (udg.NodeID, bool)
	// HoleWords is the per-hole storage in words a node pays for hole hi's
	// abstracted shape (Theorem 1.2's accounting, generalized).
	HoleWords(hole int) int
	// EdgeCount is the number of undirected edges of the waypoint overlay.
	EdgeCount() int
	// Storage is the total abstraction storage a hull-class node carries:
	// every hole's abstracted shape plus the overlay edges.
	Storage() int
	// Overlay exposes the waypoint overlay graph over the region corners.
	Overlay() *vis.Overlay
}

// Names lists the registered backend names.
func Names() []string { return []string{"hull", "bbox"} }

// New constructs the named backend over a detected hole set. The empty name
// selects the default convex-hull abstraction.
func New(name string, holes *delaunay.HoleSet) (Abstraction, error) {
	switch name {
	case "", "hull":
		return newHull(holes), nil
	case "bbox":
		return newBBox(holes), nil
	default:
		return nil, fmt.Errorf("abstraction: unknown backend %q (have %v)", name, Names())
	}
}

// regionAt is the shared strict-containment region lookup.
func regionAt(regions []Region, p geom.Point) int {
	for i := range regions {
		if len(regions[i].Poly) >= 3 && geom.PointStrictlyInConvex(p, regions[i].Poly) {
			return i
		}
	}
	return -1
}

// contains is the shared boundary-inclusive containment test.
func contains(regions []Region, p geom.Point) bool {
	for i := range regions {
		if geom.PointInConvex(p, regions[i].Poly) {
			return true
		}
	}
	return false
}

// segmentCrosses is the shared region-crossing test: a proper crossing, an
// interior pass, or an endpoint strictly inside a region (which the sampled
// visibility test can miss when only a sliver of the segment is interior).
func segmentCrosses(regions []Region, s geom.Segment) bool {
	for i := range regions {
		poly := regions[i].Poly
		if geom.PointStrictlyInConvex(s.A, poly) || geom.PointStrictlyInConvex(s.B, poly) ||
			geom.SegmentIntersectsPolygon(s, poly) {
			return true
		}
	}
	return false
}

// groupHoles unions holes whose abstracted shapes overlap (per the given
// predicate on hole indices) and returns the member sets in deterministic
// order: by smallest member index, members ascending.
func groupHoles(n int, overlap func(i, j int) bool) [][]int {
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if overlap(i, j) {
				parent[find(i)] = find(j)
			}
		}
	}
	members := map[int][]int{}
	for i := 0; i < n; i++ {
		r := find(i)
		members[r] = append(members[r], i) // ascending by construction
	}
	var roots []int
	for r := range members {
		roots = append(roots, r)
	}
	for i := 0; i < len(roots); i++ { // insertion sort by min member
		for j := i; j > 0 && members[roots[j]][0] < members[roots[j-1]][0]; j-- {
			roots[j], roots[j-1] = roots[j-1], roots[j]
		}
	}
	out := make([][]int, 0, len(roots))
	for _, r := range roots {
		out = append(out, members[r])
	}
	return out
}

// nearestRingNode returns the hole-boundary node of the given holes closest
// to p (ties broken toward the smaller node ID, for determinism).
func nearestRingNode(holes *delaunay.HoleSet, members []int, p geom.Point) (udg.NodeID, bool) {
	best := udg.NodeID(-1)
	bestD := -1.0
	for _, hi := range members {
		h := holes.Holes[hi]
		for i, v := range h.Ring {
			d := h.Polygon[i].Dist2(p)
			if best < 0 || d < bestD || (d == bestD && v < best) {
				best, bestD = v, d
			}
		}
	}
	return best, best >= 0
}
