package geom_test

import (
	"fmt"

	"hybridroute/internal/geom"
)

func ExampleConvexHull() {
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 4), geom.Pt(0, 4),
		geom.Pt(2, 2), geom.Pt(1, 3), // interior points vanish
	}
	hull := geom.ConvexHull(pts)
	fmt.Println(len(hull), "vertices, CCW:", geom.IsConvexCCW(hull))
	// Output: 4 vertices, CCW: true
}

func ExampleOrient() {
	a, b := geom.Pt(0, 0), geom.Pt(1, 0)
	fmt.Println(geom.Orient(a, b, geom.Pt(0, 1)))
	fmt.Println(geom.Orient(a, b, geom.Pt(0, -1)))
	fmt.Println(geom.Orient(a, b, geom.Pt(2, 0)))
	// Output:
	// counterclockwise
	// clockwise
	// collinear
}

func ExampleInCircle() {
	a, b, c := geom.Pt(0, 0), geom.Pt(2, 0), geom.Pt(0, 2)
	fmt.Println(geom.InCircle(a, b, c, geom.Pt(1, 1)))
	fmt.Println(geom.InCircle(a, b, c, geom.Pt(5, 5)))
	// Output:
	// true
	// false
}

func ExampleMergeHulls() {
	left := geom.ConvexHull([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1)})
	right := geom.ConvexHull([]geom.Point{geom.Pt(3, 0), geom.Pt(4, 0), geom.Pt(4, 1), geom.Pt(3, 1)})
	merged := geom.MergeHulls(left, right)
	// The inner square corners are collinear with the outer ones, so the
	// merged hull is the 4-corner bounding rectangle.
	fmt.Println(len(merged), "hull vertices")
	// Output: 4 hull vertices
}

func ExampleLocallyConvexHull() {
	// A dented square boundary: the dent is removable when the shortcut
	// stays within the radio range (Definition 4.1 of the paper).
	cycle := []geom.Point{
		geom.Pt(0, 0), geom.Pt(2, 0), geom.Pt(4, 0),
		geom.Pt(4, 4), geom.Pt(2, 3.5), geom.Pt(0, 4),
	}
	fmt.Println("generous range:", len(geom.LocallyConvexHull(cycle, 10)))
	fmt.Println("tiny range:    ", len(geom.LocallyConvexHull(cycle, 0.1)))
	// Output:
	// generous range: 4
	// tiny range:     6
}
