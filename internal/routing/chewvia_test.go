package routing

import "testing"

// ChewVia edge cases the batch engine hits concurrently: degenerate waypoint
// lists must not panic and must report sane results.
func TestChewViaEmptyWaypoints(t *testing.T) {
	_, r, _ := buildScenario(t, 0.55, 6, 6, 0)
	res := r.ChewVia(nil)
	if res.Reached {
		t.Fatal("empty waypoint list cannot reach anything")
	}
	if len(res.Path) != 0 {
		t.Fatalf("empty waypoint list produced path %v", res.Path)
	}
}

func TestChewViaSingleWaypoint(t *testing.T) {
	g, r, _ := buildScenario(t, 0.55, 6, 6, 0)
	v := NodeID(g.N() / 2)
	res := r.ChewVia([]NodeID{v})
	if !res.Reached {
		t.Fatal("a single waypoint is already at its destination")
	}
	if len(res.Path) != 1 || res.Path[0] != v {
		t.Fatalf("path = %v, want [%d]", res.Path, v)
	}
}

func TestChewViaRepeatedWaypoint(t *testing.T) {
	g, r, _ := buildScenario(t, 0.55, 6, 6, 0)
	v := NodeID(g.N() / 3)
	res := r.ChewVia([]NodeID{v, v, v})
	if !res.Reached {
		t.Fatal("repeated waypoint legs are trivially reached")
	}
	if len(res.Path) != 1 || res.Path[0] != v {
		t.Fatalf("path = %v, want [%d]", res.Path, v)
	}
}
