package delaunay

import (
	"fmt"
	"math/rand"
	"testing"

	"hybridroute/internal/geom"
	"hybridroute/internal/udg"
	"hybridroute/internal/workload"
)

// edgeSet canonicalizes a planar graph's undirected edge set for comparison.
func edgeSet(g *PlanarGraph) map[[2]int]bool {
	set := make(map[[2]int]bool)
	for _, e := range g.Edges() {
		set[e] = true
	}
	return set
}

// TestLDel2FastMatchesLDelK pins the load-bearing equivalence of the scale
// path: LDel2Fast must produce exactly LDelK(g, 2) — same edge set, same
// rotations — on scenario families with obstacles (radio holes), jittered
// near-degenerate grids, and uniform random clouds.
func TestLDel2FastMatchesLDelK(t *testing.T) {
	var graphs []*udg.Graph

	star := workload.StarPolygon(geom.Pt(3, 3.2), 1.6, 0.7, 5, 0.3)
	hexa := workload.RegularPolygon(geom.Pt(7.4, 6.8), 1.3, 6, 0.2)
	sc, err := workload.JitteredGrid(0.55, 10, 10, 1, [][]geom.Point{star, hexa})
	if err != nil {
		t.Fatalf("JitteredGrid: %v", err)
	}
	graphs = append(graphs, sc.Build())

	plain, err := workload.JitteredGrid(0.5, 8, 6, 1, nil)
	if err != nil {
		t.Fatalf("JitteredGrid plain: %v", err)
	}
	graphs = append(graphs, plain.Build())

	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		pts := make([]geom.Point, 0, 220)
		for len(pts) < 220 {
			pts = append(pts, geom.Pt(rng.Float64()*9, rng.Float64()*9))
		}
		g := udg.Build(pts, 1.1)
		if !g.Connected() {
			continue
		}
		graphs = append(graphs, g)
	}

	for gi, g := range graphs {
		t.Run(fmt.Sprintf("graph%d_n%d", gi, g.N()), func(t *testing.T) {
			want := LDelK(g, 2)
			got := LDel2Fast(g)
			ws, gs := edgeSet(want), edgeSet(got)
			for e := range ws {
				if !gs[e] {
					t.Errorf("LDel2Fast missing edge %v", e)
				}
			}
			for e := range gs {
				if !ws[e] {
					t.Errorf("LDel2Fast extra edge %v", e)
				}
			}
			if t.Failed() {
				return
			}
			// Rotations must match too (byte-identical downstream faces).
			for v := 0; v < g.N(); v++ {
				wr := want.Neighbors(udg.NodeID(v))
				gr := got.Neighbors(udg.NodeID(v))
				if len(wr) != len(gr) {
					t.Fatalf("node %d rotation length %d != %d", v, len(gr), len(wr))
				}
				for i := range wr {
					if wr[i] != gr[i] {
						t.Fatalf("node %d rotation[%d] = %d, want %d", v, i, gr[i], wr[i])
					}
				}
			}
		})
	}
}
