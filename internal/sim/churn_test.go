package sim

import (
	"math"
	"strings"
	"testing"

	"hybridroute/internal/trace"
)

// TestSetFaultsRejectsNaN pins the non-finite validation bugfix: NaN compares
// false against both range bounds, so the old `x < 0 || x > 1` checks let it
// through into the drop hash.
func TestSetFaultsRejectsNaN(t *testing.T) {
	s := New(lineGraph(4, 0.9), Config{})
	nan := math.NaN()
	cases := []FaultConfig{
		{AdHocLoss: nan},
		{LongLoss: nan},
		{LossRegions: []LossRegion{{Radius: 1, AdHocLoss: nan}}},
		{LossRegions: []LossRegion{{Radius: 1, LongLoss: nan}}},
		{LossRegions: []LossRegion{{Radius: nan, AdHocLoss: 0.5}}},
	}
	for i, cfg := range cases {
		if err := s.SetFaults(cfg); err == nil {
			t.Errorf("case %d: NaN rate/radius must be rejected", i)
		}
	}
	if err := s.SetFaults(FaultConfig{AdHocLoss: math.Inf(1)}); err == nil {
		t.Error("infinite loss rate must be rejected")
	}
}

// TestSetFaultsRejectsDuplicateCrashed pins the set semantics of Crashed: a
// duplicated node ID is rejected with an error naming it.
func TestSetFaultsRejectsDuplicateCrashed(t *testing.T) {
	s := New(lineGraph(4, 0.9), Config{})
	err := s.SetFaults(FaultConfig{Crashed: []NodeID{1, 2, 1}})
	if err == nil {
		t.Fatal("duplicate crashed node must be rejected")
	}
	if !strings.Contains(err.Error(), "node 1") {
		t.Errorf("error must name the duplicate, got: %v", err)
	}
}

// TestCrashRecoverLifecycle exercises the dynamic membership API: generation
// advances once per effective change, no-ops don't advance it, listeners see
// every change, and out-of-range nodes are rejected.
func TestCrashRecoverLifecycle(t *testing.T) {
	s := New(lineGraph(4, 0.9), Config{})
	type change struct {
		v  NodeID
		up bool
	}
	var seen []change
	s.OnMembershipChange(func(v NodeID, up bool) { seen = append(seen, change{v, up}) })

	if g := s.TopoGeneration(); g != 0 {
		t.Fatalf("fresh sim generation = %d, want 0", g)
	}
	if err := s.Crash(2); err != nil {
		t.Fatal(err)
	}
	if !s.IsCrashed(2) || s.TopoGeneration() != 1 {
		t.Fatalf("after Crash(2): crashed=%v gen=%d", s.IsCrashed(2), s.TopoGeneration())
	}
	if err := s.Crash(2); err != nil { // idempotent no-op
		t.Fatal(err)
	}
	if s.TopoGeneration() != 1 {
		t.Fatalf("re-crash must not advance the generation, got %d", s.TopoGeneration())
	}
	if err := s.Recover(2); err != nil {
		t.Fatal(err)
	}
	if s.IsCrashed(2) || s.TopoGeneration() != 2 {
		t.Fatalf("after Recover(2): crashed=%v gen=%d", s.IsCrashed(2), s.TopoGeneration())
	}
	if err := s.Recover(2); err != nil { // no-op again
		t.Fatal(err)
	}
	if s.TopoGeneration() != 2 {
		t.Fatalf("re-recover must not advance the generation, got %d", s.TopoGeneration())
	}
	if err := s.Crash(99); err == nil {
		t.Error("out-of-range Crash must be rejected")
	}
	if err := s.Recover(-1); err == nil {
		t.Error("out-of-range Recover must be rejected")
	}
	want := []change{{2, false}, {2, true}}
	if len(seen) != len(want) {
		t.Fatalf("listener saw %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("listener saw %v, want %v", seen, want)
		}
	}
}

// TestCrashDuringRunRejected enforces the "no membership changes during Run"
// discipline (same as Counters): Crash/Recover called from inside a protocol
// step must error instead of racing the round.
func TestCrashDuringRunRejected(t *testing.T) {
	s := New(lineGraph(4, 0.9), Config{})
	var crashErr, recoverErr error
	s.SetProto(0, ProtoFunc(func(ctx *Context, round int, inbox []Envelope) {
		if round == 0 {
			crashErr = s.Crash(1)
			recoverErr = s.Recover(1)
			ctx.SendAdHoc(1, "ping")
		}
	}))
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if crashErr == nil || recoverErr == nil {
		t.Fatalf("mid-Run Crash/Recover must be rejected, got %v / %v", crashErr, recoverErr)
	}
	if s.TopoGeneration() != 0 || s.IsCrashed(1) {
		t.Error("rejected mid-Run membership change must not take effect")
	}
	// Between runs the same calls are legal.
	if err := s.Crash(1); err != nil {
		t.Fatal(err)
	}
}

// TestChurnScheduleFiresMidRun pins schedule-driven churn: a crash stamped at
// round r kills the node at the boundary of round r, in-flight messages to it
// vanish, and a later recovery revives it — all observed by listeners with
// the tracer recording crash/recover events.
func TestChurnScheduleFiresMidRun(t *testing.T) {
	s := New(lineGraph(4, 0.9), Config{})
	tr := trace.New(0)
	s.SetTracer(tr)
	var ups, downs int
	s.OnMembershipChange(func(v NodeID, up bool) {
		if v != 2 {
			t.Errorf("unexpected membership change of node %d", v)
		}
		if up {
			ups++
		} else {
			downs++
		}
	})
	err := s.SetFaults(FaultConfig{Churn: ChurnSchedule{Events: []ChurnEvent{
		{Round: 2, Node: 2, Up: false},
		{Round: 5, Node: 2, Up: true},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if !s.FaultsActive() {
		t.Fatal("a churn schedule alone must activate the fault model")
	}
	// Node 1 pings node 2 every round for 8 rounds; node 2 echoes back.
	got := 0
	s.SetProto(1, ProtoFunc(func(ctx *Context, round int, inbox []Envelope) {
		got += len(inbox)
		if round < 8 {
			ctx.SendAdHoc(2, "ping")
			ctx.KeepAlive()
		}
	}))
	s.SetProto(2, ProtoFunc(func(ctx *Context, round int, inbox []Envelope) {
		for range inbox {
			ctx.SendAdHoc(1, "echo")
		}
	}))
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if downs != 1 || ups != 1 {
		t.Fatalf("listener saw %d crashes / %d recoveries, want 1 / 1", downs, ups)
	}
	if s.TopoGeneration() != 2 {
		t.Fatalf("generation = %d, want 2", s.TopoGeneration())
	}
	if s.IsCrashed(2) {
		t.Error("node 2 must be recovered at end of run")
	}
	if s.ChurnPending() != 0 {
		t.Errorf("%d churn events never fired", s.ChurnPending())
	}
	// Echoes flow before the crash and after the recovery, but not while
	// down: pings of rounds 0..7, echoes lost for sends landing in the dead
	// window. With crash at round 2 and recovery at round 5, strictly fewer
	// than 8 echoes arrive.
	if got == 0 || got >= 8 {
		t.Errorf("echo count %d does not reflect a dead window", got)
	}
	counts := tr.CountByKind()
	if counts["crash"] != 1 || counts["recover"] != 1 {
		t.Errorf("trace counts = %v, want one crash and one recover", counts)
	}
}

// TestStaticCrashedStaysSilent pins the compatibility contract: the static
// Crashed list keeps PR 2 semantics — no listener notification, no topology
// generation advance — so pre-churn flows stay byte-identical.
func TestStaticCrashedStaysSilent(t *testing.T) {
	s := New(lineGraph(4, 0.9), Config{})
	notified := 0
	s.OnMembershipChange(func(NodeID, bool) { notified++ })
	if err := s.SetFaults(FaultConfig{Crashed: []NodeID{1}}); err != nil {
		t.Fatal(err)
	}
	if notified != 0 || s.TopoGeneration() != 0 {
		t.Fatalf("static Crashed must not notify (saw %d) nor advance the generation (%d)",
			notified, s.TopoGeneration())
	}
	if !s.IsCrashed(1) {
		t.Fatal("static crash must still take effect")
	}
}

// TestSetFaultsReconcilesDynamicMembership: once the generation has advanced,
// replacing the fault config reconciles membership to the new Crashed set and
// notifies listeners of the delta — including full removal of the fault model.
func TestSetFaultsReconcilesDynamicMembership(t *testing.T) {
	s := New(lineGraph(4, 0.9), Config{})
	var seen []NodeID
	s.OnMembershipChange(func(v NodeID, up bool) { seen = append(seen, v) })
	if err := s.Crash(3); err != nil {
		t.Fatal(err)
	}
	// Swap to a config that crashes 1 instead: 3 recovers, 1 crashes.
	if err := s.SetFaults(FaultConfig{Crashed: []NodeID{1}}); err != nil {
		t.Fatal(err)
	}
	if s.IsCrashed(3) || !s.IsCrashed(1) {
		t.Fatalf("reconcile failed: crashed(3)=%v crashed(1)=%v", s.IsCrashed(3), s.IsCrashed(1))
	}
	// Remove faults entirely: 1 recovers.
	if err := s.SetFaults(FaultConfig{}); err != nil {
		t.Fatal(err)
	}
	if s.FaultsActive() || s.IsCrashed(1) {
		t.Error("inactive config must clear all membership state")
	}
	if len(seen) != 4 { // crash 3, recover 3, crash 1, recover 1
		t.Errorf("listener saw %v, want 4 changes", seen)
	}
	if s.TopoGeneration() != 4 {
		t.Errorf("generation = %d, want 4", s.TopoGeneration())
	}
}

// TestGenerateChurnDeterministic pins schedule generation: same arguments,
// same schedule; protected nodes are never crashed; every crash is paired
// with a recovery dwell rounds later.
func TestGenerateChurnDeterministic(t *testing.T) {
	a := GenerateChurn(7, 100, 400, 5, 30, []NodeID{0, 1})
	b := GenerateChurn(7, 100, 400, 5, 30, []NodeID{0, 1})
	if len(a.Events) != len(b.Events) || len(a.Events) != 10 {
		t.Fatalf("schedules differ or wrong size: %d vs %d", len(a.Events), len(b.Events))
	}
	downAt := make(map[NodeID]int)
	for i, ev := range a.Events {
		if ev != b.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, ev, b.Events[i])
		}
		if ev.Node == 0 || ev.Node == 1 {
			t.Errorf("protected node %d appears in schedule", ev.Node)
		}
		if i > 0 && ev.Round < a.Events[i-1].Round {
			t.Error("events not sorted by round")
		}
		if !ev.Up {
			downAt[ev.Node] = ev.Round
		} else if ev.Round-downAt[ev.Node] != 30 {
			t.Errorf("node %d recovery %d rounds after crash, want dwell=30", ev.Node, ev.Round-downAt[ev.Node])
		}
	}
	other := GenerateChurn(8, 100, 400, 5, 30, nil)
	same := len(other.Events) == len(a.Events)
	if same {
		for i := range other.Events {
			if other.Events[i] != a.Events[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds must give different schedules")
	}
}
