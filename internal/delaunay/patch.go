// Incremental topology patching for dynamic membership (churn): removing a
// crashed node's edges from the embedding and re-detecting radio holes while
// reusing the derived geometry (hull, polygon, bounding box) of every hole
// whose boundary ring did not change. Hole detection itself is re-run — the
// face structure is global — but hull recomputation is the expensive part per
// hole, and under a single localized membership change almost every ring is
// untouched.

package delaunay

import (
	"strconv"

	"hybridroute/internal/geom"
	"hybridroute/internal/udg"
)

// RemoveNodeEdges deletes every edge incident to v and returns v's former
// neighbours. Deleting entries preserves the CCW order of the remaining
// rotations, so the embedding stays a valid rotation system; v itself stays
// in the graph as an isolated point (node IDs are stable).
func (g *PlanarGraph) RemoveNodeEdges(v udg.NodeID) []udg.NodeID {
	nbrs := append([]udg.NodeID(nil), g.row(v)...)
	for _, w := range nbrs {
		a := g.materialize(w)
		out := a[:0]
		for _, x := range a {
			if x != v {
				out = append(out, x)
			}
		}
		g.mut[w] = out
	}
	g.mut[v] = g.materialize(v)[:0]
	return nbrs
}

// ringKey canonicalizes a boundary cycle for identity comparison across two
// hole detections: rotate the cycle to start at its minimum node, preserving
// orientation (faces are always traced in a fixed orientation, so two
// detections of the same ring produce rotations of each other).
func ringKey(cycle []udg.NodeID, outer bool) string {
	if len(cycle) == 0 {
		return ""
	}
	min := 0
	for i, v := range cycle {
		if v < cycle[min] {
			min = i
		}
	}
	buf := make([]byte, 0, 8*len(cycle)+2)
	if outer {
		buf = append(buf, 'o')
	} else {
		buf = append(buf, 'i')
	}
	for i := 0; i < len(cycle); i++ {
		buf = strconv.AppendInt(buf, int64(cycle[(min+i)%len(cycle)]), 10)
		buf = append(buf, ',')
	}
	return string(buf)
}

// DetectHolesLive finds the radio holes of a planar graph under dynamic
// membership: excluded marks dead nodes, whose (isolated) points are left out
// of the convex-hull overlay of Definition 2.5 so a corpse on the perimeter
// cannot fabricate or hide an outer hole. When prev is non-nil, any detected
// hole whose boundary ring is identical to a hole of prev reuses that hole's
// derived geometry instead of recomputing it; the second return value counts
// reused holes. DetectHolesLive(g, r, nil, nil) is exactly DetectHoles(g, r).
func DetectHolesLive(ldel *PlanarGraph, r float64, excluded map[udg.NodeID]bool, prev *HoleSet) (*HoleSet, int) {
	return detectHoles(ldel, r, excluded, prev)
}

// DetectHoles finds all radio holes of the planar graph ldel (assumed to be
// LDel²(V) or a planar supergraph of it) for transmission radius r.
//
// Inner holes are bounded faces with ≥ 4 distinct nodes. For outer holes,
// the convex hull CH(V) of the node set is overlaid (Definition 2.5) and
// bounded faces of the combined graph with ≥ 3 nodes containing a hull edge
// longer than r are reported.
func DetectHoles(ldel *PlanarGraph, r float64) *HoleSet {
	hs, _ := detectHoles(ldel, r, nil, nil)
	return hs
}

func detectHoles(ldel *PlanarGraph, r float64, excluded map[udg.NodeID]bool, prev *HoleSet) (*HoleSet, int) {
	hs := &HoleSet{NodeHoles: make(map[udg.NodeID][]int)}
	var prevByRing map[string]*Hole
	if prev != nil {
		prevByRing = make(map[string]*Hole, len(prev.Holes))
		for _, h := range prev.Holes {
			prevByRing[ringKey(h.Ring, h.Outer)] = h
		}
	}
	reused := 0
	add := func(cycle []udg.NodeID, outer bool) {
		if old, ok := prevByRing[ringKey(cycle, outer)]; ok {
			h := *old // geometry slices are immutable once built: share them
			h.ID = len(hs.Holes)
			hs.Holes = append(hs.Holes, &h)
			reused++
			return
		}
		hs.addHole(ldel, cycle, outer)
	}

	faces := ldel.Faces()
	outer := ldel.OuterFaceIndex(faces)
	for i, f := range faces {
		if i == outer {
			hs.OuterBoundary = append([]udg.NodeID(nil), f.Cycle...)
			continue
		}
		if excluded != nil && f.area(ldel) < 0 {
			// Removing a cut node can disconnect the embedding, giving each
			// component its own clockwise unbounded face; only one is the
			// global outer face, so skip the rest rather than report them as
			// (spurious) inner holes.
			continue
		}
		if f.DistinctNodes() >= 4 {
			add(f.Cycle, false)
		}
	}

	// Outer holes: overlay convex hull edges of the (live) point set.
	pts := ldel.Points()
	hullInput := pts
	if len(excluded) > 0 {
		hullInput = make([]geom.Point, 0, len(pts))
		for v := 0; v < ldel.N(); v++ {
			if !excluded[udg.NodeID(v)] {
				hullInput = append(hullInput, pts[v])
			}
		}
	}
	hullPts := geom.ConvexHull(hullInput)
	if len(hullPts) >= 3 {
		// Only hull vertices ever get looked up, so index just those few
		// points instead of building a map over all n nodes. Scanning nodes
		// in ascending order keeps the historical resolution for coincident
		// points (the highest live node ID wins).
		ptIndex := make(map[geom.Point]udg.NodeID, len(hullPts))
		for _, p := range hullPts {
			ptIndex[p] = udg.NodeID(0)
		}
		for v := 0; v < ldel.N(); v++ {
			if excluded[udg.NodeID(v)] {
				continue
			}
			if _, ok := ptIndex[ldel.Point(udg.NodeID(v))]; ok {
				ptIndex[ldel.Point(udg.NodeID(v))] = udg.NodeID(v)
			}
		}
		gbar := ldel.Clone()
		type hedge struct{ a, b udg.NodeID }
		longHull := make(map[hedge]bool)
		for i := range hullPts {
			pa, pb := hullPts[i], hullPts[(i+1)%len(hullPts)]
			a, okA := ptIndex[pa]
			b, okB := ptIndex[pb]
			if !okA || !okB {
				continue
			}
			gbar.AddEdge(a, b)
			if pa.Dist(pb) > r {
				longHull[hedge{a, b}] = true
				longHull[hedge{b, a}] = true
			}
		}
		if len(longHull) > 0 {
			bfaces := gbar.Faces()
			bouter := gbar.OuterFaceIndex(bfaces)
			for i, f := range bfaces {
				if i == bouter || f.DistinctNodes() < 3 {
					continue
				}
				if excluded != nil && f.area(gbar) < 0 {
					continue
				}
				has := false
				n := len(f.Cycle)
				for j := 0; j < n && !has; j++ {
					if longHull[hedge{f.Cycle[j], f.Cycle[(j+1)%n]}] {
						has = true
					}
				}
				if has {
					add(f.Cycle, true)
				}
			}
		}
	}

	for i, h := range hs.Holes {
		for _, v := range h.Ring {
			hs.NodeHoles[v] = append(hs.NodeHoles[v], i)
		}
	}
	return hs, reused
}
