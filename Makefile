# Tier-1 verification (referenced from ROADMAP.md): vet + build + full test
# suite + a race-detector pass over the packages with concurrent query paths.
.PHONY: tier1 vet build test race bench ci

tier1: vet build test race

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

# The batch engine serves queries from many goroutines over one shared
# Network, the simulator's fault injection must stay deterministic under
# parallel stepping, the tracer takes concurrent emits from the worker
# pool, churn repair patches the shared triangulation between engine
# batches, and the hole abstraction backends are read concurrently by every
# routing worker; keep all six packages race-clean.
race:
	go test -race ./internal/abstraction/... ./internal/core/... ./internal/delaunay/... ./internal/routing/... ./internal/sim/... ./internal/trace/...

# Benchmarks stream through cmd/benchjson, which passes the benchstat-friendly
# text through unchanged and archives a JSON summary for CI artifacts.
bench:
	go test -bench=. -benchmem -run '^$$' | go run ./cmd/benchjson -o BENCH_results.json

ci: tier1 bench
