package expt

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"hybridroute/internal/core"
	"hybridroute/internal/geom"
	"hybridroute/internal/sim"
	"hybridroute/internal/stats"
	"hybridroute/internal/trace"
	"hybridroute/internal/viz"
)

// e18Setup builds the E18 testbed: the corridor deployment of E17 with a
// mid-field loss region, so the east-west query both detours (around
// whatever obstacles the deployment produces) and retries (inside the lossy
// zone). A fresh network per call keeps traced/untraced runs comparable.
func e18Setup(opt Options) (*core.Network, sim.NodeID, sim.NodeID, sim.LossRegion, error) {
	nw, w, h, err := e17Scenario(opt.seed(), opt.Quick)
	if err != nil {
		return nil, 0, 0, sim.LossRegion{}, err
	}
	region := e17Region(w, h, 0.5)
	if err := nw.Sim.SetFaults(sim.FaultConfig{Seed: uint64(opt.seed()) + 18, LossRegions: []sim.LossRegion{region}}); err != nil {
		return nil, 0, 0, sim.LossRegion{}, err
	}
	pairs := e17Pairs(nw, w, h, 1)
	if len(pairs) == 0 {
		return nil, 0, 0, sim.LossRegion{}, fmt.Errorf("e18: no query pair")
	}
	return nw, pairs[0][0], pairs[0][1], region, nil
}

// e18Artifacts writes the traced query as a JSON report (per-hop trace plus
// the Prometheus-style counters folded from the raw events) and an SVG
// rendering of the traversed route with retransmitting hops marked and the
// loss region drawn.
func e18Artifacts(dir string, nw *core.Network, report *core.TraceReport, events []trace.Event, region sim.LossRegion) error {
	reg := trace.NewRegistry()
	reg.MergeEvents(events)
	blob, err := json.MarshalIndent(struct {
		Report  *core.TraceReport `json:"report"`
		Metrics *trace.Registry   `json:"metrics"`
	}{report, reg}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "E18_trace.json"), append(blob, '\n'), 0o644); err != nil {
		return err
	}

	sc := viz.Scene{
		Points: nw.G.Points(),
		Title:  fmt.Sprintf("E18 traced query %d->%d: ratio %.2f, %d hop resends", report.S, report.T, report.CompetitiveRatio, report.HopRetrans),
		Discs:  []viz.Disc{{Center: region.Center, R: region.Radius}},
	}
	for v := 0; v < nw.G.N(); v++ {
		for _, u := range nw.G.Neighbors(sim.NodeID(v)) {
			if int(u) > v {
				sc.Edges = append(sc.Edges, [2]int{v, int(u)})
			}
		}
	}
	seen := make(map[int]bool)
	for _, h := range report.Hops {
		if !seen[h.From] {
			seen[h.From] = true
			sc.Route = append(sc.Route, nw.G.Point(sim.NodeID(h.From)))
		}
		if h.Acked {
			sc.Route = append(sc.Route, nw.G.Point(sim.NodeID(h.To)))
			seen[h.To] = true
		}
		if h.Attempts > 1 {
			sc.Marks = append(sc.Marks, nw.G.Point(sim.NodeID(h.From)))
		}
	}
	sc.Segment = &geom.Segment{A: nw.G.Point(sim.NodeID(report.S)), B: nw.G.Point(sim.NodeID(report.T))}
	return os.WriteFile(filepath.Join(dir, "E18_trace.svg"), []byte(viz.Render(sc, 1000)), 0o644)
}

// E18 demonstrates the observability layer end to end: one east-west query is
// driven through a mid-corridor loss region twice — once untraced, once with
// the full tracer installed — and the traced run must (a) stay byte-identical
// to the untraced one, (b) deliver, (c) report a competitive ratio against
// the LDel² shortest path, and (d) attribute per-hop retransmissions to the
// hops inside the lossy region. With Options.TraceDir set, the traced query
// is written out as E18_trace.json and E18_trace.svg.
func E18(opt Options) (*Result, error) {
	res := &Result{
		ID:    "E18",
		Title: "Hop-level trace of a lossy-region query",
		Claim: "tracing is observationally free (byte-identical transport report) and the per-hop report localizes retransmissions to the loss region and prices the route against the LDel² shortest path",
	}

	// Untraced reference run.
	plain, s0, t0, _, err := e18Setup(opt)
	if err != nil {
		return nil, err
	}
	plainRep, plainErr := plain.RouteOnSimOpt(s0, t0, core.TransportOptions{PayloadWords: 64})

	// Traced run on a fresh but identical network.
	nw, s, t, region, err := e18Setup(opt)
	if err != nil {
		return nil, err
	}
	if s != s0 || t != t0 {
		return nil, fmt.Errorf("e18: query pair not reproducible (%d->%d vs %d->%d)", s, t, s0, t0)
	}
	tr := trace.New(0)
	nw.SetTracer(tr)
	report, rep, qerr := nw.TraceQuery(s, t, core.TransportOptions{PayloadWords: 64})
	if (qerr == nil) != (plainErr == nil) {
		return nil, fmt.Errorf("e18: traced/untraced error mismatch: %v vs %v", qerr, plainErr)
	}
	if qerr != nil {
		return nil, fmt.Errorf("e18: query failed: %w", qerr)
	}

	identical := transportReportsEqual(plainRep, rep)
	inRegion := func(v int) bool {
		return nw.G.Point(sim.NodeID(v)).Dist(region.Center) <= region.Radius
	}
	regionResends, outsideResends := 0, 0
	for _, h := range report.Hops {
		if h.Attempts <= 1 {
			continue
		}
		if inRegion(h.From) || inRegion(h.To) {
			regionResends += h.Attempts - 1
		} else {
			outsideResends += h.Attempts - 1
		}
	}

	res.Table = stats.NewTable("hop", "round", "from", "to", "attempts", "acked", "plan")
	for i, h := range report.Hops {
		res.Table.AddRow(i, h.Round, h.From, h.To, h.Attempts, h.Acked, h.Plan)
	}
	res.note("delivered=%v rounds=%d hops=%d", report.Delivered, report.Rounds, len(report.Hops))
	res.note("traversed %.3f vs LDel shortest %.3f: competitive ratio %.3f (straight line %.3f)",
		report.TraversedLength, report.ShortestLength, report.CompetitiveRatio, report.GeoDistance)
	res.note("hop resends: %d inside the loss region, %d outside; %d replans, %d nacks",
		regionResends, outsideResends, report.Replans, report.Nacks)
	res.note("plans: %v; traced run byte-identical to untraced: %v", report.PlanPath, identical)

	res.Pass = report.Delivered && identical &&
		report.CompetitiveRatio > 0 &&
		report.HopRetrans > 0 && regionResends >= outsideResends

	if opt.TraceDir != "" {
		if err := e18Artifacts(opt.TraceDir, nw, report, tr.Events(), region); err != nil {
			return nil, fmt.Errorf("e18: artifacts: %w", err)
		}
		res.note("trace artifacts written to %s", opt.TraceDir)
	}
	return res, nil
}
