package workload_test

import (
	"fmt"

	"hybridroute/internal/geom"
	"hybridroute/internal/workload"
)

func ExampleCityGrid() {
	sc, err := workload.CityGrid(1, 2, 2, 3, 3, 2, 1, 6)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("buildings:", len(sc.Obstacles))
	fmt.Println("connected:", sc.Build().Connected())
	// Output:
	// buildings: 4
	// connected: true
}

func ExampleNewMobility() {
	sc, err := workload.Uniform(2, 120, 6, 6, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	m := workload.NewMobility(sc, 3, 0.05)
	connectedThroughout := true
	for step := 0; step < 5; step++ {
		sc = m.Step()
		if !sc.Build().Connected() {
			connectedThroughout = false
		}
	}
	fmt.Println("connected throughout:", connectedThroughout)
	// Output: connected throughout: true
}

func ExampleRegularPolygon() {
	hex := workload.RegularPolygon(geom.Pt(0, 0), 2, 6, 0)
	fmt.Println("vertices:", len(hex), "convex:", geom.IsConvexCCW(hex))
	// Output: vertices: 6 convex: true
}
