package routing

import (
	"math/rand"
	"sort"
	"testing"
)

// TestSortByParamStable pins the determinism contract of the corridor-chain
// sort: equal keys keep their input order (the insertion sort it replaced was
// stable, and chain construction depends on it).
func TestSortByParamStable(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	vs := make([]NodeID, 200)
	keys := map[NodeID]float64{}
	for i := range vs {
		vs[i] = NodeID(i)
		keys[vs[i]] = float64(rng.Intn(10)) // many equal keys
	}
	sorted := append([]NodeID(nil), vs...)
	sortByParam(sorted, func(v NodeID) float64 { return keys[v] })
	if !sort.SliceIsSorted(sorted, func(i, j int) bool { return keys[sorted[i]] < keys[sorted[j]] }) {
		t.Fatal("sortByParam must sort by key")
	}
	for i := 1; i < len(sorted); i++ {
		if keys[sorted[i-1]] == keys[sorted[i]] && sorted[i-1] > sorted[i] {
			t.Fatalf("equal keys reordered: %d before %d", sorted[i-1], sorted[i])
		}
	}
}

func TestSortFloats(t *testing.T) {
	xs := []float64{0.7, 0.1, 0.4, 0.4, 0.0, 1.0, 0.2}
	sortFloats(xs)
	if !sort.Float64sAreSorted(xs) {
		t.Fatalf("sortFloats left %v unsorted", xs)
	}
}
