// The metrics registry: flat named counters and gauges aggregated from trace
// events (or incremented directly), exported as Prometheus text-format
// families and as a JSON object that cmd/benchjson can merge into
// BENCH_results.json. Metric names follow the Prometheus convention
// (hybridroute_<layer>_<what>_total for counters).

package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry accumulates named metrics. Safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]uint64
	gauges   map[string]float64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: make(map[string]uint64), gauges: make(map[string]float64)}
}

// Add increments a counter by delta.
func (r *Registry) Add(name string, delta uint64) {
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// SetGauge sets a gauge to v.
func (r *Registry) SetGauge(name string, v float64) {
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// MaxGauge raises a gauge to v if v exceeds its current value.
func (r *Registry) MaxGauge(name string, v float64) {
	r.mu.Lock()
	if cur, ok := r.gauges[name]; !ok || v > cur {
		r.gauges[name] = v
	}
	r.mu.Unlock()
}

// Snapshot copies both metric maps inside one critical section, so the
// returned counters and gauges describe the same instant. Every exported view
// (Counters, Gauges, PrometheusText, MarshalJSON) is built from this: a scrape
// concurrent with writers must never observe, say, a delivers counter ahead of
// the sends counter it can never exceed, which two separate lock acquisitions
// would allow.
func (r *Registry) Snapshot() (counters map[string]uint64, gauges map[string]float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	counters = make(map[string]uint64, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges = make(map[string]float64, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	return counters, gauges
}

// Counters returns a copy of the counter map.
func (r *Registry) Counters() map[string]uint64 {
	counters, _ := r.Snapshot()
	return counters
}

// Gauges returns a copy of the gauge map.
func (r *Registry) Gauges() map[string]float64 {
	_, gauges := r.Snapshot()
	return gauges
}

// metricName maps an event kind to its counter name, or "" for kinds that are
// not counter-shaped (queue depth becomes a max gauge instead).
var metricName = map[Kind]string{
	KindRound:      "hybridroute_sim_rounds_total",
	KindSend:       "hybridroute_sim_sends_total",
	KindDrop:       "hybridroute_sim_drops_total",
	KindDeliver:    "hybridroute_sim_delivers_total",
	KindHopSend:    "hybridroute_transport_hop_sends_total",
	KindHopRetry:   "hybridroute_transport_hop_retries_total",
	KindHopAck:     "hybridroute_transport_hop_acks_total",
	KindHopNack:    "hybridroute_transport_hop_nacks_total",
	KindReplan:     "hybridroute_transport_replans_total",
	KindDetour:     "hybridroute_transport_detours_total",
	KindCacheHit:   "hybridroute_engine_cache_hits_total",
	KindCacheMiss:  "hybridroute_engine_cache_misses_total",
	KindCacheEvict: "hybridroute_engine_cache_evictions_total",
	KindCrash:      "hybridroute_sim_crashes_total",
	KindRecover:    "hybridroute_sim_recoveries_total",
	KindSuspect:    "hybridroute_transport_suspects_total",
	KindRepair:     "hybridroute_core_repairs_total",

	KindFailover:        "hybridroute_cluster_failovers_total",
	KindBreakerOpen:     "hybridroute_cluster_breaker_open_total",
	KindBreakerHalfOpen: "hybridroute_cluster_breaker_half_open_total",
	KindBreakerClose:    "hybridroute_cluster_breaker_close_total",
	KindHedge:           "hybridroute_cluster_hedges_total",
	KindHedgeWin:        "hybridroute_cluster_hedge_wins_total",
	KindDegraded:        "hybridroute_cluster_degraded_answers_total",
}

// MergeEvents folds a recorded event stream into the registry: one counter
// per event kind (cache evictions count evicted entries, not store calls) and
// a max gauge for the engine's worker-queue depth.
func (r *Registry) MergeEvents(events []Event) {
	for _, e := range events {
		switch e.Kind {
		case KindQueueDepth:
			r.MaxGauge("hybridroute_engine_queue_depth_max", float64(e.Value))
		case KindCacheEvict:
			r.Add(metricName[e.Kind], uint64(e.Value))
		default:
			if name := metricName[e.Kind]; name != "" {
				r.Add(name, 1)
			}
		}
	}
}

// PrometheusText renders the registry in the Prometheus text exposition
// format, families sorted by name so output is deterministic. It renders one
// Snapshot, so a scrape racing MarshalJSON on the same registry state sees the
// same values through both views.
func (r *Registry) PrometheusText() string {
	counters, gauges := r.Snapshot()
	var b strings.Builder
	names := make([]string, 0, len(counters))
	for n := range counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", n, n, counters[n])
	}
	names = names[:0]
	for n := range gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %g\n", n, n, gauges[n])
	}
	return b.String()
}

// registryJSON is the registry's JSON document shape, shared with
// cmd/benchjson's metrics block.
type registryJSON struct {
	Counters map[string]uint64  `json:"counters,omitempty"`
	Gauges   map[string]float64 `json:"gauges,omitempty"`
}

// MarshalJSON renders {"counters": {...}, "gauges": {...}} (map keys are
// sorted by encoding/json, so output is deterministic). Both maps come from
// one Snapshot — a single critical section — so a scrape concurrent with
// writers is internally consistent.
func (r *Registry) MarshalJSON() ([]byte, error) {
	counters, gauges := r.Snapshot()
	return json.Marshal(registryJSON{Counters: counters, Gauges: gauges})
}
