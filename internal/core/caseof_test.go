package core

import (
	"testing"

	"hybridroute/internal/geom"
	"hybridroute/internal/sim"
	"hybridroute/internal/workload"
)

// prepTwoHoleScenario builds a network with two well-separated obstacles so
// both hull groups are populated and cross-group queries (case 3) exist.
func prepTwoHoleScenario(t *testing.T) *Network {
	t.Helper()
	obstacles := [][]geom.Point{
		workload.RegularPolygon(geom.Pt(3, 4), 1.5, 24, 0.1),
		workload.RegularPolygon(geom.Pt(9, 4), 1.5, 24, 0.1),
	}
	sc, err := workload.JitteredGrid(0.55, 12, 8, 1, obstacles)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := Preprocess(sc.Build(), Config{Strict: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// caseOfSamples classifies every node of the network once so the table test
// below can draw representatives of each position class.
type caseOfSamples struct {
	outside  []sim.NodeID         // groupAt < 0
	interior map[int][]sim.NodeID // group -> nodes strictly inside, not in a bay
	inBay    map[int][]sim.NodeID // bay index -> nodes inside that bay
	bayGroup map[int]int          // bay index -> owning group
}

func classifyForCaseOf(nw *Network) caseOfSamples {
	cs := caseOfSamples{
		interior: map[int][]sim.NodeID{},
		inBay:    map[int][]sim.NodeID{},
		bayGroup: map[int]int{},
	}
	holeGroup := map[int]int{}
	for gi, g := range nw.Groups {
		for _, hi := range g.Holes {
			holeGroup[hi] = gi
		}
	}
	for bi := range nw.Bays {
		cs.bayGroup[bi] = holeGroup[nw.Bays[bi].Hole]
	}
	for v := 0; v < nw.G.N(); v++ {
		p := nw.G.Point(sim.NodeID(v))
		gi := nw.groupAt(p)
		if gi < 0 {
			cs.outside = append(cs.outside, sim.NodeID(v))
			continue
		}
		if bi := nw.bayIndexOf(p); bi >= 0 {
			cs.inBay[bi] = append(cs.inBay[bi], sim.NodeID(v))
		} else {
			cs.interior[gi] = append(cs.interior[gi], sim.NodeID(v))
		}
	}
	return cs
}

// TestCaseOfTable pins the five-way position classification of Section 4.3:
// representatives of every class are paired and caseOf must dispatch each
// pair to exactly the documented case.
func TestCaseOfTable(t *testing.T) {
	nw := prepTwoHoleScenario(t)
	cs := classifyForCaseOf(nw)

	if len(cs.outside) < 2 {
		t.Fatal("scenario must have nodes outside all hulls")
	}
	// Two distinct groups that contain nodes (interior or in a bay).
	groupNode := map[int]sim.NodeID{}
	for gi, vs := range cs.interior {
		if len(vs) > 0 {
			groupNode[gi] = vs[0]
		}
	}
	for bi, vs := range cs.inBay {
		if _, ok := groupNode[cs.bayGroup[bi]]; !ok && len(vs) > 0 {
			groupNode[cs.bayGroup[bi]] = vs[0]
		}
	}
	if len(groupNode) < 2 {
		t.Fatalf("need two populated hull groups, got %d", len(groupNode))
	}
	var gA, gB int
	first := true
	for gi := range groupNode {
		if first {
			gA, first = gi, false
		} else if gi != gA {
			gB = gi
		}
	}
	// A bay with two nodes, and two distinct bays of one group.
	sameBay := [2]sim.NodeID{-1, -1}
	diffBays := [2]sim.NodeID{-1, -1}
	for bi, vs := range cs.inBay {
		if len(vs) >= 2 && sameBay[0] < 0 {
			sameBay = [2]sim.NodeID{vs[0], vs[1]}
		}
		for bj, ws := range cs.inBay {
			if bj != bi && cs.bayGroup[bj] == cs.bayGroup[bi] && len(vs) > 0 && len(ws) > 0 && diffBays[0] < 0 {
				diffBays = [2]sim.NodeID{vs[0], ws[0]}
			}
		}
	}
	if sameBay[0] < 0 {
		t.Fatal("scenario must have a bay holding two nodes")
	}

	cases := []struct {
		name string
		s, t sim.NodeID
		want int
		skip bool
	}{
		{"both outside all hulls", cs.outside[0], cs.outside[1], 1, false},
		{"outside vs inside a group", cs.outside[0], groupNode[gA], 2, false},
		{"inside vs outside (reversed)", groupNode[gA], cs.outside[0], 2, false},
		{"different groups", groupNode[gA], groupNode[gB], 3, false},
		{"same group, different bays", diffBays[0], diffBays[1], 4, diffBays[0] < 0},
		{"same bay", sameBay[0], sameBay[1], 5, false},
	}
	// Same group, one node in a bay and one in the inter-hole region, is also
	// case 4; use it when no group has two populated bays.
	for bi, vs := range cs.inBay {
		gi := cs.bayGroup[bi]
		if len(vs) > 0 && len(cs.interior[gi]) > 0 {
			cases = append(cases, struct {
				name string
				s, t sim.NodeID
				want int
				skip bool
			}{"same group, bay vs non-bay interior", vs[0], cs.interior[gi][0], 4, false})
			break
		}
	}
	ran4 := false
	for _, tc := range cases {
		if tc.skip {
			continue
		}
		if tc.want == 4 {
			ran4 = true
		}
		got, gs, gt := nw.caseOf(tc.s, tc.t)
		if got != tc.want {
			t.Errorf("%s: caseOf(%d,%d) = %d (groups %d,%d), want case %d",
				tc.name, tc.s, tc.t, got, gs, gt, tc.want)
		}
	}
	if !ran4 {
		t.Fatal("no case-4 pair available in the scenario; enlarge it")
	}
}

// TestCaseOfHullAndBayBoundaries pins the boundary semantics the classifier
// is built on: a node sitting exactly on a group's hull corner is NOT inside
// the group (containment is strict), while a node on a bay polygon's boundary
// IS inside the bay (polygon membership includes the boundary).
func TestCaseOfHullAndBayBoundaries(t *testing.T) {
	nw := prepTwoHoleScenario(t)
	cs := classifyForCaseOf(nw)
	if len(cs.outside) == 0 {
		t.Fatal("need an outside node")
	}

	hullCorners := 0
	for gi := range nw.Groups {
		for _, p := range nw.Groups[gi].Hull {
			v, ok := nw.nodeAt(p)
			if !ok {
				continue
			}
			hullCorners++
			if got := nw.groupAt(p); got == gi {
				t.Errorf("hull corner node %d of group %d counts as inside its own hull; containment must be strict", v, gi)
			}
			// Against an outside node the pair is case 1 (or 2 if the corner
			// happens to lie inside another group's hull) — never 3, 4, or 5.
			if c, _, _ := nw.caseOf(v, cs.outside[0]); c > 2 {
				t.Errorf("hull corner %d vs outside node: case %d, want 1 or 2", v, c)
			}
		}
	}
	if hullCorners == 0 {
		t.Fatal("no hull corner resolved to a node")
	}

	// Bay boundary: every Interior boundary node lies on its bay's polygon
	// outline; whenever it is strictly inside the group hull, bayIndexOf must
	// place it in a bay of the same hole.
	pinned := 0
	for bi := range nw.Bays {
		for _, v := range nw.Bays[bi].Interior {
			p := nw.G.Point(v)
			if nw.groupAt(p) < 0 {
				continue
			}
			got := nw.bayIndexOf(p)
			if got < 0 {
				t.Errorf("bay-boundary node %d (bay %d) not assigned to any bay; polygon membership must include the boundary", v, bi)
				continue
			}
			if nw.Bays[got].Hole != nw.Bays[bi].Hole {
				t.Errorf("bay-boundary node %d assigned to a bay of hole %d, want hole %d", v, nw.Bays[got].Hole, nw.Bays[bi].Hole)
			}
			pinned++
		}
	}
	if pinned == 0 {
		t.Fatal("no bay-boundary node exercised the membership rule")
	}
}
