package domset_test

import (
	"fmt"
	"math"

	"hybridroute/internal/domset"
	"hybridroute/internal/geom"
	"hybridroute/internal/sim"
	"hybridroute/internal/udg"
)

// Example computes a dominating set of a 12-node ring with the distributed
// protocol — the bay-area structure of Section 5.6 (degree 2, so the
// approximation factor is constant).
func Example() {
	const k = 12
	pts := make([]geom.Point, k)
	seq := make([]sim.NodeID, k)
	radius := k * 0.5 / (2 * math.Pi)
	for i := 0; i < k; i++ {
		ang := 2 * math.Pi * float64(i) / k
		pts[i] = geom.Pt(radius*math.Cos(ang), radius*math.Sin(ang))
		seq[i] = sim.NodeID(i)
	}
	g := udg.Build(pts, 0.6)
	s := sim.New(g, sim.Config{Strict: true})
	adj := domset.RingAdj(seq)

	ds, err := domset.Run(s, adj, 42)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("dominating:", domset.IsDominatingSet(adj, ds))
	fmt.Println("constant-factor size:", len(ds) <= 3*((k+2)/3))
	// Output:
	// dominating: true
	// constant-factor size: true
}
