package delaunay

import (
	"testing"

	"hybridroute/internal/geom"
)

func sq(x, y, side float64) []geom.Point {
	return []geom.Point{
		geom.Pt(x, y), geom.Pt(x+side, y), geom.Pt(x+side, y+side), geom.Pt(x, y+side),
	}
}

// TestHullsOverlapTable exercises the boundary-inclusive overlap test on the
// degenerate configurations the old proper-intersection test missed.
func TestHullsOverlapTable(t *testing.T) {
	cases := []struct {
		name string
		a, b []geom.Point
		want bool
	}{
		{"disjoint", sq(0, 0, 1), sq(3, 3, 1), false},
		{"proper crossing", sq(0, 0, 2), sq(1, 1, 2), true},
		{"identical", sq(0, 0, 1), sq(0, 0, 1), true},
		{"shared edge", sq(0, 0, 1), sq(1, 0, 1), true},
		{"shared vertex", sq(0, 0, 1), sq(1, 1, 1), true},
		{"vertex on edge", sq(0, 0, 2), sq(2, 0.5, 1), true},
		{"nested", sq(0, 0, 4), sq(1, 1, 1), true},
		{"segment hull crossing", sq(0, 0, 2), []geom.Point{geom.Pt(-1, 1), geom.Pt(3, 1)}, true},
		{"segment hull touching endpoint", sq(0, 0, 2), []geom.Point{geom.Pt(2, 1), geom.Pt(4, 1)}, true},
		{"segment hull disjoint", sq(0, 0, 2), []geom.Point{geom.Pt(3, 1), geom.Pt(4, 1)}, false},
		{"point inside hull", sq(0, 0, 2), []geom.Point{geom.Pt(1, 1)}, true},
		{"point on hull boundary", sq(0, 0, 2), []geom.Point{geom.Pt(2, 1)}, true},
		{"point outside hull", sq(0, 0, 2), []geom.Point{geom.Pt(5, 5)}, false},
		{"two points", []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)}, []geom.Point{geom.Pt(0.5, 0)}, true},
		{"empty", nil, sq(0, 0, 1), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := HullsOverlap(tc.a, tc.b); got != tc.want {
				t.Fatalf("HullsOverlap = %v, want %v", got, tc.want)
			}
			if got := HullsOverlap(tc.b, tc.a); got != tc.want {
				t.Fatalf("HullsOverlap (swapped) = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestHullsIntersectTouching pins that HullsIntersect now reports hulls in
// boundary contact (the violation the old test under-reported).
func TestHullsIntersectTouching(t *testing.T) {
	mk := func(poly []geom.Point) *Hole {
		return &Hole{Polygon: poly, Hull: geom.ConvexHull(poly), BBox: geom.BoundingBox(poly)}
	}
	hs := &HoleSet{Holes: []*Hole{mk(sq(0, 0, 1)), mk(sq(1, 0, 1))}}
	if !hs.HullsIntersect() {
		t.Fatal("hulls sharing an edge must be reported as intersecting")
	}
	hs = &HoleSet{Holes: []*Hole{mk(sq(0, 0, 1)), mk(sq(5, 5, 1))}}
	if hs.HullsIntersect() {
		t.Fatal("disjoint hulls must not be reported as intersecting")
	}
}

// TestHullCircumferenceIsHullPerimeter pins the HullCircumference bugfix: it
// must equal the hull perimeter, with the bounding-box circumference exposed
// separately (and never smaller, by convexity).
func TestHullCircumferenceIsHullPerimeter(t *testing.T) {
	poly := []geom.Point{
		geom.Pt(0, 0), geom.Pt(3, -1), geom.Pt(4, 2), geom.Pt(2, 4), geom.Pt(-1, 2),
	}
	h := &Hole{Polygon: poly, Hull: geom.ConvexHull(poly), BBox: geom.BoundingBox(geom.ConvexHull(poly))}
	want := geom.PolygonPerimeter(h.Hull)
	if got := h.HullCircumference(); got != want {
		t.Fatalf("HullCircumference = %v, want hull perimeter %v", got, want)
	}
	if h.BBoxCircumference() != h.BBox.Circumference() {
		t.Fatal("BBoxCircumference must be the bounding-box circumference")
	}
	if h.HullCircumference() > h.BBoxCircumference()+1e-9 {
		t.Fatalf("hull perimeter %v must not exceed bounding-box circumference %v",
			h.HullCircumference(), h.BBoxCircumference())
	}
}
