// Static (simulator-free) preprocessing for the million-node regime. The
// distributed pipeline of Preprocess is faithful to the paper — every phase
// runs as real protocol messages — but the simulator allocates per-node
// knowledge state that makes n=10⁶ infeasible in one process.
// PreprocessStatic builds the identical routing state centrally:
//
//   - LDel² via the grid-accelerated LDel2Fast (provably equal to the
//     distributed construction's output, both pinned by tests),
//   - hole detection, the hole abstraction, visibility domains, bays and
//     storage accounting exactly as Preprocess does,
//   - a synthetic balanced overlay tree in place of phase J (the query path
//     never reads the tree; only storage accounting does),
//
// and skips the phases that only measure communication (rings, flood,
// dominating sets — Bay.DS is never read on the query path). Routing
// outcomes are byte-identical to a Preprocess-built network on the same
// deployment, pinned by the golden digest test.

package core

import (
	"fmt"
	"sync"

	"hybridroute/internal/delaunay"
	"hybridroute/internal/geom"
	"hybridroute/internal/overlaytree"
	"hybridroute/internal/routing"
	"hybridroute/internal/sim"
	"hybridroute/internal/udg"
	"hybridroute/internal/vis"
)

// PreprocessStatic builds a query-ready Network without a simulator.
// Config fields other than Abstraction are ignored (there is no
// communication to make strict, parallel, or seeded). The returned network
// answers Route/Engine queries exactly like a Preprocess-built one;
// simulator-bound features (RouteOnSim transports, churn schedules,
// round/message accounting) are unavailable — nw.Sim is nil.
func PreprocessStatic(g *udg.Graph, cfg Config) (*Network, error) {
	if g.N() == 0 {
		return nil, fmt.Errorf("core: empty deployment")
	}
	if !g.Connected() {
		return nil, fmt.Errorf("core: UDG is disconnected; the paper assumes strong connectivity")
	}
	nw := &Network{G: g}
	nw.Link = NewLinkStats(0)

	nw.LDel = delaunay.LDel2Fast(g)
	nw.Router = routing.New(nw.LDel)

	nw.Holes = delaunay.DetectHoles(nw.LDel, g.Radius())
	nw.Report.NumHoles = len(nw.Holes.Holes)
	nw.Report.HullsIntersect = nw.Holes.HullsIntersect()

	nw.Tree = overlaytree.Synthetic(g.N())
	nw.Report.TreeHeight = nw.Tree.Height()

	if err := nw.buildAbstraction(cfg.Abstraction); err != nil {
		return nil, err
	}
	var boundaries [][]geom.Point
	for _, h := range nw.Holes.Holes {
		boundaries = append(boundaries, h.Polygon)
	}
	nw.VisDomain = vis.NewDomain(boundaries)
	nw.hullNodeOf = make(map[geom.Point]sim.NodeID)
	for _, h := range nw.Holes.Holes {
		for _, v := range h.HullNodes {
			nw.hullNodeOf[nw.G.Point(v)] = v
		}
	}
	nw.nodeAtPt = make(map[geom.Point]sim.NodeID, g.N())
	for v := 0; v < g.N(); v++ {
		nw.nodeAtPt[g.Point(sim.NodeID(v))] = sim.NodeID(v)
	}
	nw.groupDomains = make([]*vis.Domain, len(nw.Groups))
	nw.groupDomainInit = make([]sync.Once, len(nw.Groups))

	nw.buildBays()
	nw.accountStorage()
	nw.enableChurnRepair()
	return nw, nil
}
