package domset

import (
	"math"
	"testing"
	"testing/quick"

	"hybridroute/internal/geom"
	"hybridroute/internal/sim"
	"hybridroute/internal/udg"
)

// ringSim builds a k-node ring embedded on a circle with unit-disk edges
// between ring neighbours and returns the sim plus the ring adjacency.
func ringSim(k int) (*sim.Sim, map[sim.NodeID][]sim.NodeID) {
	pts := make([]geom.Point, k)
	radius := float64(k) * 0.5 / (2 * math.Pi)
	seq := make([]sim.NodeID, k)
	for i := 0; i < k; i++ {
		ang := 2 * math.Pi * float64(i) / float64(k)
		pts[i] = geom.Pt(radius*math.Cos(ang), radius*math.Sin(ang))
		seq[i] = sim.NodeID(i)
	}
	chord := 2 * radius * math.Sin(math.Pi/float64(k))
	g := udg.Build(pts, chord*1.2)
	s := sim.New(g, sim.Config{Strict: true})
	return s, RingAdj(seq)
}

func TestRunOnRings(t *testing.T) {
	for _, k := range []int{3, 4, 7, 16, 60, 200} {
		s, adj := ringSim(k)
		ds, err := Run(s, adj, 42)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !IsDominatingSet(adj, ds) {
			t.Fatalf("k=%d: not dominating", k)
		}
		opt := (k + 2) / 3
		if len(ds) > 3*opt+2 {
			t.Errorf("k=%d: ds size %d too far above optimum %d", k, len(ds), opt)
		}
	}
}

func TestRunRoundsLogarithmic(t *testing.T) {
	for _, k := range []int{32, 128, 512} {
		s, adj := ringSim(k)
		if _, err := Run(s, adj, 7); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		budget := phaseLen * (4*int(math.Log2(float64(k))) + 20)
		if s.Rounds() > budget {
			t.Errorf("k=%d: %d rounds exceeds budget %d", k, s.Rounds(), budget)
		}
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	s1, adj1 := ringSim(40)
	ds1, err := Run(s1, adj1, 99)
	if err != nil {
		t.Fatal(err)
	}
	s2, adj2 := ringSim(40)
	ds2, err := Run(s2, adj2, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds1) != len(ds2) {
		t.Fatalf("sizes differ: %d vs %d", len(ds1), len(ds2))
	}
	for v := range ds1 {
		if !ds2[v] {
			t.Fatalf("memberships differ at %d", v)
		}
	}
}

func TestRunOnPathSubset(t *testing.T) {
	// A bay-area segment: DS over a sub-path of the ring only.
	s, _ := ringSim(30)
	seq := make([]sim.NodeID, 12)
	for i := range seq {
		seq[i] = sim.NodeID(i)
	}
	adj := PathAdj(seq)
	ds, err := Run(s, adj, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !IsDominatingSet(adj, ds) {
		t.Fatal("not dominating")
	}
}

func TestRunSingleVertex(t *testing.T) {
	s, _ := ringSim(3)
	adj := map[sim.NodeID][]sim.NodeID{1: nil}
	ds, err := Run(s, adj, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ds[1] {
		t.Fatal("isolated vertex must dominate itself")
	}
}

func TestRunEmpty(t *testing.T) {
	s, _ := ringSim(3)
	ds, err := Run(s, nil, 1)
	if err != nil || len(ds) != 0 {
		t.Fatalf("empty graph: ds=%v err=%v", ds, err)
	}
}

func TestIsDominatingSet(t *testing.T) {
	adj := map[sim.NodeID][]sim.NodeID{
		0: {1}, 1: {0, 2}, 2: {1},
	}
	if !IsDominatingSet(adj, map[sim.NodeID]bool{1: true}) {
		t.Error("center dominates the path")
	}
	if IsDominatingSet(adj, map[sim.NodeID]bool{0: true}) {
		t.Error("end vertex does not dominate the far end")
	}
	if !IsDominatingSet(adj, map[sim.NodeID]bool{0: true, 2: true}) {
		t.Error("both ends dominate")
	}
	if IsDominatingSet(adj, map[sim.NodeID]bool{}) {
		t.Error("empty set dominates nothing")
	}
}

func TestGreedyDSOnRing(t *testing.T) {
	for _, k := range []int{3, 10, 30} {
		seq := make([]sim.NodeID, k)
		for i := range seq {
			seq[i] = sim.NodeID(i)
		}
		adj := RingAdj(seq)
		ds := GreedyDS(adj)
		if !IsDominatingSet(adj, ds) {
			t.Fatalf("k=%d greedy not dominating", k)
		}
		opt := (k + 2) / 3
		if len(ds) > 2*opt {
			t.Errorf("k=%d: greedy size %d vs opt %d", k, len(ds), opt)
		}
	}
}

func TestPathDS(t *testing.T) {
	for k := 1; k <= 40; k++ {
		picks := PathDS(k)
		ds := map[int]bool{}
		for _, p := range picks {
			if p < 0 || p >= k {
				t.Fatalf("k=%d: pick %d out of range", k, p)
			}
			ds[p] = true
		}
		for v := 0; v < k; v++ {
			if !ds[v] && !ds[v-1] && !ds[v+1] {
				t.Fatalf("k=%d: vertex %d not dominated by %v", k, v, picks)
			}
		}
		if want := (k + 2) / 3; len(picks) > want+1 {
			t.Errorf("k=%d: size %d, near-optimal would be %d", k, len(picks), want)
		}
	}
}

func TestPathAdjAndRingAdj(t *testing.T) {
	seq := []sim.NodeID{5, 9, 2}
	p := PathAdj(seq)
	if len(p[5]) != 1 || len(p[9]) != 2 || len(p[2]) != 1 {
		t.Errorf("path adjacency wrong: %v", p)
	}
	r := RingAdj(seq)
	for _, v := range seq {
		if len(r[v]) != 2 {
			t.Errorf("ring degree of %d = %d", v, len(r[v]))
		}
	}
	one := RingAdj([]sim.NodeID{3})
	if len(one) != 1 {
		t.Errorf("singleton ring: %v", one)
	}
}

func TestUniformInRange(t *testing.T) {
	f := func(a, b uint64) bool {
		u := uniform(a, b)
		return u >= 0 && u < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMixAvalanche(t *testing.T) {
	// Adjacent inputs should yield very different outputs.
	same := 0
	for i := uint64(0); i < 64; i++ {
		if mix(1, i)&1 == mix(1, i+1)&1 {
			same++
		}
	}
	if same < 16 || same > 48 {
		t.Errorf("low bit correlation suspicious: %d/64", same)
	}
}

func BenchmarkDomSetRing256(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, adj := ringSim(256)
		if _, err := Run(s, adj, 1); err != nil {
			b.Fatal(err)
		}
	}
}
